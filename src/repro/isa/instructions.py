"""Instruction specification tables and the decoded-instruction container.

The tables below cover RV64I, the M extension, Zicsr and the four custom
opcodes reserved for RoCC accelerators.  They are the single source of truth
used by both :mod:`repro.isa.encoder` and :mod:`repro.isa.decoder`, so an
instruction added here is automatically round-trippable.
"""

from __future__ import annotations


class InstrFormat:
    """Symbolic names for RISC-V instruction formats."""

    R = "R"
    I = "I"  # noqa: E741 - conventional RISC-V format name
    S = "S"
    B = "B"
    U = "U"
    J = "J"
    CSR = "CSR"
    CSR_IMM = "CSR_IMM"
    SYSTEM = "SYSTEM"
    FENCE = "FENCE"
    SHIFT64 = "SHIFT64"
    SHIFT32 = "SHIFT32"
    ROCC = "ROCC"


# Major opcodes -------------------------------------------------------------
OPCODE_LOAD = 0x03
OPCODE_MISC_MEM = 0x0F
OPCODE_OP_IMM = 0x13
OPCODE_AUIPC = 0x17
OPCODE_OP_IMM_32 = 0x1B
OPCODE_STORE = 0x23
OPCODE_OP = 0x33
OPCODE_LUI = 0x37
OPCODE_OP_32 = 0x3B
OPCODE_BRANCH = 0x63
OPCODE_JALR = 0x67
OPCODE_JAL = 0x6F
OPCODE_SYSTEM = 0x73
OPCODE_CUSTOM0 = 0x0B
OPCODE_CUSTOM1 = 0x2B
OPCODE_CUSTOM2 = 0x5B
OPCODE_CUSTOM3 = 0x7B


# R-type: mnemonic -> (opcode, funct3, funct7)
R_TYPE = {
    "add": (OPCODE_OP, 0x0, 0x00),
    "sub": (OPCODE_OP, 0x0, 0x20),
    "sll": (OPCODE_OP, 0x1, 0x00),
    "slt": (OPCODE_OP, 0x2, 0x00),
    "sltu": (OPCODE_OP, 0x3, 0x00),
    "xor": (OPCODE_OP, 0x4, 0x00),
    "srl": (OPCODE_OP, 0x5, 0x00),
    "sra": (OPCODE_OP, 0x5, 0x20),
    "or": (OPCODE_OP, 0x6, 0x00),
    "and": (OPCODE_OP, 0x7, 0x00),
    # M extension
    "mul": (OPCODE_OP, 0x0, 0x01),
    "mulh": (OPCODE_OP, 0x1, 0x01),
    "mulhsu": (OPCODE_OP, 0x2, 0x01),
    "mulhu": (OPCODE_OP, 0x3, 0x01),
    "div": (OPCODE_OP, 0x4, 0x01),
    "divu": (OPCODE_OP, 0x5, 0x01),
    "rem": (OPCODE_OP, 0x6, 0x01),
    "remu": (OPCODE_OP, 0x7, 0x01),
    # RV64 word variants
    "addw": (OPCODE_OP_32, 0x0, 0x00),
    "subw": (OPCODE_OP_32, 0x0, 0x20),
    "sllw": (OPCODE_OP_32, 0x1, 0x00),
    "srlw": (OPCODE_OP_32, 0x5, 0x00),
    "sraw": (OPCODE_OP_32, 0x5, 0x20),
    "mulw": (OPCODE_OP_32, 0x0, 0x01),
    "divw": (OPCODE_OP_32, 0x4, 0x01),
    "divuw": (OPCODE_OP_32, 0x5, 0x01),
    "remw": (OPCODE_OP_32, 0x6, 0x01),
    "remuw": (OPCODE_OP_32, 0x7, 0x01),
}

# I-type arithmetic / loads / jalr: mnemonic -> (opcode, funct3)
I_TYPE = {
    "addi": (OPCODE_OP_IMM, 0x0),
    "slti": (OPCODE_OP_IMM, 0x2),
    "sltiu": (OPCODE_OP_IMM, 0x3),
    "xori": (OPCODE_OP_IMM, 0x4),
    "ori": (OPCODE_OP_IMM, 0x6),
    "andi": (OPCODE_OP_IMM, 0x7),
    "addiw": (OPCODE_OP_IMM_32, 0x0),
    "lb": (OPCODE_LOAD, 0x0),
    "lh": (OPCODE_LOAD, 0x1),
    "lw": (OPCODE_LOAD, 0x2),
    "ld": (OPCODE_LOAD, 0x3),
    "lbu": (OPCODE_LOAD, 0x4),
    "lhu": (OPCODE_LOAD, 0x5),
    "lwu": (OPCODE_LOAD, 0x6),
    "jalr": (OPCODE_JALR, 0x0),
}

# Shift-by-immediate: mnemonic -> (opcode, funct3, funct6_or_funct7, shamt_bits)
SHIFT_IMM = {
    "slli": (OPCODE_OP_IMM, 0x1, 0x00, 6),
    "srli": (OPCODE_OP_IMM, 0x5, 0x00, 6),
    "srai": (OPCODE_OP_IMM, 0x5, 0x10, 6),
    "slliw": (OPCODE_OP_IMM_32, 0x1, 0x00, 5),
    "srliw": (OPCODE_OP_IMM_32, 0x5, 0x00, 5),
    "sraiw": (OPCODE_OP_IMM_32, 0x5, 0x20, 5),
}

# S-type stores: mnemonic -> funct3
S_TYPE = {
    "sb": 0x0,
    "sh": 0x1,
    "sw": 0x2,
    "sd": 0x3,
}

# B-type branches: mnemonic -> funct3
B_TYPE = {
    "beq": 0x0,
    "bne": 0x1,
    "blt": 0x4,
    "bge": 0x5,
    "bltu": 0x6,
    "bgeu": 0x7,
}

# U-type: mnemonic -> opcode
U_TYPE = {
    "lui": OPCODE_LUI,
    "auipc": OPCODE_AUIPC,
}

# CSR instructions: mnemonic -> (funct3, uses_immediate)
CSR_OPS = {
    "csrrw": (0x1, False),
    "csrrs": (0x2, False),
    "csrrc": (0x3, False),
    "csrrwi": (0x5, True),
    "csrrsi": (0x6, True),
    "csrrci": (0x7, True),
}

#: The four RoCC custom opcodes, indexed by custom number.
CUSTOM_OPCODE_LIST = (OPCODE_CUSTOM0, OPCODE_CUSTOM1, OPCODE_CUSTOM2, OPCODE_CUSTOM3)


class Decoded:
    """A decoded RISC-V instruction.

    A plain attribute container (``__slots__`` for speed; the simulators
    decode millions of these).  Not every field is meaningful for every
    format; unused fields hold 0.
    """

    __slots__ = (
        "raw",
        "mnemonic",
        "fmt",
        "rd",
        "rs1",
        "rs2",
        "imm",
        "csr",
        "funct3",
        "funct7",
        "xd",
        "xs1",
        "xs2",
        "custom",
    )

    def __init__(
        self,
        raw: int,
        mnemonic: str,
        fmt: str,
        rd: int = 0,
        rs1: int = 0,
        rs2: int = 0,
        imm: int = 0,
        csr: int = 0,
        funct3: int = 0,
        funct7: int = 0,
        xd: int = 0,
        xs1: int = 0,
        xs2: int = 0,
        custom: int = 0,
    ) -> None:
        self.raw = raw
        self.mnemonic = mnemonic
        self.fmt = fmt
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.csr = csr
        self.funct3 = funct3
        self.funct7 = funct7
        self.xd = xd
        self.xs1 = xs1
        self.xs2 = xs2
        self.custom = custom

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Decoded({self.mnemonic} rd=x{self.rd} rs1=x{self.rs1} "
            f"rs2=x{self.rs2} imm={self.imm} raw=0x{self.raw:08x})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Decoded):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in self.__slots__
        )

    def __hash__(self) -> int:
        return hash((self.raw, self.mnemonic))


def all_mnemonics() -> list:
    """Return every mnemonic known to the ISA tables (useful for tests)."""
    names = []
    names.extend(R_TYPE)
    names.extend(I_TYPE)
    names.extend(SHIFT_IMM)
    names.extend(S_TYPE)
    names.extend(B_TYPE)
    names.extend(U_TYPE)
    names.extend(CSR_OPS)
    names.extend(["jal", "ecall", "ebreak", "fence", "fence.i"])
    return names
