"""Control and status register (CSR) addresses used by the framework.

Only the user-level counters matter for the paper's methodology: the test
programs bracket each decimal operation with ``RDCYCLE`` (a ``csrrs`` of the
``cycle`` CSR) exactly as described in Section V of the paper.
"""

from __future__ import annotations

# User counter/timers (read-only shadows of the machine counters).
CYCLE = 0xC00
TIME = 0xC01
INSTRET = 0xC02

# Machine-mode counters.
MCYCLE = 0xB00
MINSTRET = 0xB02

# Machine information registers.
MVENDORID = 0xF11
MARCHID = 0xF12
MIMPID = 0xF13
MHARTID = 0xF14

#: CSRs the simulators implement.  Anything else traps.
IMPLEMENTED = {
    CYCLE: "cycle",
    TIME: "time",
    INSTRET: "instret",
    MCYCLE: "mcycle",
    MINSTRET: "minstret",
    MVENDORID: "mvendorid",
    MARCHID: "marchid",
    MIMPID: "mimpid",
    MHARTID: "mhartid",
}

NAME_TO_ADDR = {name: addr for addr, name in IMPLEMENTED.items()}


def csr_name(addr: int) -> str:
    """Return the symbolic name of a CSR address (or a hex literal)."""
    return IMPLEMENTED.get(addr, f"csr_0x{addr:03x}")
