"""Configuration of one generated test program."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.verification.database import OperandClass


class SolutionKind:
    """Which decimal-multiplication solution the generated program runs."""

    SOFTWARE = "software"            # decNumber-style pure-software baseline
    METHOD1 = "method1"              # Method-1 with the RoCC accelerator
    METHOD1_DUMMY = "method1_dummy"  # Method-1 with dummy functions

    ALL = (SOFTWARE, METHOD1, METHOD1_DUMMY)


@dataclass(frozen=True)
class TestProgramConfig:
    """The generator parameters listed in Section III of the paper."""

    solution: str = SolutionKind.METHOD1
    precision: str = "double"               # "double" (decimal64) or "quad"
    operation: str = "multiply"
    operand_classes: tuple = OperandClass.TABLE_IV_MIX
    num_samples: int = 100
    repetitions: int = 1                    # repetitions per calculation
    output_mode: str = "cycles"             # "cycles" or "time"
    seed: int = 2018
    #: Registered workload name; when set, the generator draws operand
    #: vectors from ``repro.workloads.get_workload(workload)`` instead of
    #: the class-mix database (``operand_classes`` is then ignored).  The
    #: name is resolved when vectors are generated, not here: configs built
    #: in campaign worker processes carry the name as provenance for
    #: vectors already generated in the parent, and the worker's registry
    #: need not know user-registered workloads.
    workload: str = None

    def __post_init__(self) -> None:
        if self.solution not in SolutionKind.ALL:
            raise ConfigurationError(f"unknown solution: {self.solution!r}")
        if self.precision not in ("double", "quad"):
            raise ConfigurationError(f"unknown precision: {self.precision!r}")
        if self.precision == "quad":
            raise ConfigurationError(
                "quad (decimal128) kernels are not generated; the software "
                "library supports decimal128 but the evaluated kernels are "
                "decimal64, as in the paper's experiments"
            )
        if self.operation != "multiply":
            raise ConfigurationError(
                f"unsupported operation {self.operation!r}: the evaluated "
                "co-design solution is decimal multiplication"
            )
        if self.num_samples < 1:
            raise ConfigurationError("num_samples must be at least 1")
        if self.repetitions < 1:
            raise ConfigurationError("repetitions must be at least 1")
        if self.output_mode not in ("cycles", "time"):
            raise ConfigurationError(f"unknown output mode: {self.output_mode!r}")
        for name in self.operand_classes:
            if name not in OperandClass.ALL:
                raise ConfigurationError(f"unknown operand class: {name!r}")

    @property
    def uses_accelerator(self) -> bool:
        return self.solution == SolutionKind.METHOD1

    def with_overrides(self, **overrides) -> "TestProgramConfig":
        from dataclasses import replace

        return replace(self, **overrides)
