"""Configuration of one generated test program."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.decnumber.formats import PRECISION_BY_FORMAT, get_format
from repro.errors import ConfigurationError
from repro.verification.database import OperandClass


class SolutionKind:
    """Which decimal-multiplication solution the generated program runs."""

    SOFTWARE = "software"            # decNumber-style pure-software baseline
    METHOD1 = "method1"              # Method-1 with the RoCC accelerator
    METHOD1_DUMMY = "method1_dummy"  # Method-1 with dummy functions

    ALL = (SOFTWARE, METHOD1, METHOD1_DUMMY)


@dataclass(frozen=True)
class TestProgramConfig:
    """The generator parameters listed in Section III of the paper."""

    solution: str = SolutionKind.METHOD1
    precision: str = "double"               # "double" (decimal64) or "quad"
    operation: str = "multiply"
    operand_classes: tuple = OperandClass.TABLE_IV_MIX
    num_samples: int = 100
    repetitions: int = 1                    # repetitions per calculation
    output_mode: str = "cycles"             # "cycles" or "time"
    seed: int = 2018
    #: Registered workload name; when set, the generator draws operand
    #: vectors from ``repro.workloads.get_workload(workload)`` instead of
    #: the class-mix database (``operand_classes`` is then ignored).  The
    #: name is resolved when vectors are generated, not here: configs built
    #: in campaign worker processes carry the name as provenance for
    #: vectors already generated in the parent, and the worker's registry
    #: need not know user-registered workloads.
    workload: str = None

    def __post_init__(self) -> None:
        if self.solution not in SolutionKind.ALL:
            raise ConfigurationError(f"unknown solution: {self.solution!r}")
        if self.precision not in ("double", "quad"):
            raise ConfigurationError(f"unknown precision: {self.precision!r}")
        from repro.decnumber.operations import OPERATIONS

        if self.operation not in OPERATIONS:
            raise ConfigurationError(
                f"unsupported operation {self.operation!r}: known operations "
                f"are {', '.join(sorted(OPERATIONS))}"
            )
        if self.num_samples < 1:
            raise ConfigurationError("num_samples must be at least 1")
        if self.repetitions < 1:
            raise ConfigurationError("repetitions must be at least 1")
        if self.output_mode not in ("cycles", "time"):
            raise ConfigurationError(f"unknown output mode: {self.output_mode!r}")
        for name in self.operand_classes:
            if name not in OperandClass.ALL:
                raise ConfigurationError(f"unknown operand class: {name!r}")

    @property
    def uses_accelerator(self) -> bool:
        return self.solution == SolutionKind.METHOD1

    @property
    def fmt(self) -> str:
        """Canonical interchange-format name of this configuration."""
        return "decimal64" if self.precision == "double" else "decimal128"

    @property
    def format_spec(self):
        """The :class:`~repro.decnumber.formats.InterchangeFormat` in use."""
        return get_format(self.fmt)

    @classmethod
    def precision_for_format(cls, fmt) -> str:
        """Map a format name/spec onto the config's precision vocabulary."""
        return PRECISION_BY_FORMAT[get_format(fmt).name]

    def with_overrides(self, **overrides) -> "TestProgramConfig":
        from dataclasses import replace

        return replace(self, **overrides)
