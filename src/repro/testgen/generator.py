"""Build a runnable RISC-V test program from a configuration + operand vectors.

The generated program contains (Fig. 2's "Test Program" box):

* the DPD/BCD/power-of-ten lookup tables,
* the encoded operand pairs and buffers for results and per-sample cycles,
* a measurement harness that brackets every multiplication with ``RDCYCLE``
  (the paper's measurement primitive) and accumulates a total,
* the selected kernel (software baseline, Method-1, or Method-1 with dummy
  functions).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace

from repro.asm.builder import AsmBuilder
from repro.asm.program import TOHOST_ADDRESS
from repro.decnumber.operations import get_operation
from repro.errors import ConfigurationError
from repro.kernels.method1 import emit_method1_kernel
from repro.kernels.software_mul import emit_software_mul_kernel
from repro.kernels.tables import emit_tables
from repro.testgen.config import SolutionKind, TestProgramConfig
from repro.verification.database import VerificationDatabase
from repro.verification.reference import GoldenReference

#: Data-section symbols of the generated harness.
HARNESS_SYMBOLS = {
    "operands": "operands",
    "results": "results",
    "cycle_samples": "cycle_samples",
    "total_cycles": "total_cycles",
    "num_samples": "num_samples",
}

#: Solution kind -> label suffix (shared with the kernel emitters' default
#: label vocabulary, e.g. ``dec64_mul_sw`` / ``dec128_fma_m1``).
_SOLUTION_SUFFIXES = {
    SolutionKind.SOFTWARE: "sw",
    SolutionKind.METHOD1: "m1",
    SolutionKind.METHOD1_DUMMY: "m1d",
}


def kernel_label(fmt: str, operation: str, solution: str) -> str:
    """Kernel entry label for (format, operation, solution).

    One shared naming scheme across all kernel emitters:
    ``dec{64,128}_{mul,add,sub,fma}_{sw,m1,m1d}``.  The decimal64 multiply
    labels are the paper's hand-tuned single-word emitters; everything else
    is spec-driven.
    """
    from repro.decnumber.formats import get_format

    bits = get_format(fmt).total_bits
    mnemonic = get_operation(operation).mnemonic
    return f"dec{bits}_{mnemonic}_{_SOLUTION_SUFFIXES[solution]}"


@dataclass
class GeneratedProgram:
    """A linked test program plus everything needed to interpret its output."""

    image: object
    config: TestProgramConfig
    vectors: list
    kernel_label: str
    operand_words: list = field(default_factory=list)

    @property
    def num_samples(self) -> int:
        return len(self.vectors)

    @property
    def words_per_value(self) -> int:
        """64-bit memory words per encoded operand/result."""
        return self.config.format_spec.words_per_value

    def read_results(self, result) -> list:
        """Per-sample result words from a finished simulation.

        Multi-word formats store results least-significant word first; each
        entry of the returned list is the full encoded integer.
        """
        words = self.words_per_value
        raw = result.read_dwords(
            HARNESS_SYMBOLS["results"], self.num_samples * words
        )
        if words == 1:
            return raw
        return [
            sum(raw[base + i] << (64 * i) for i in range(words))
            for base in range(0, len(raw), words)
        ]

    def read_cycle_samples(self, result) -> list:
        """Per-sample cycle counts (RDCYCLE deltas) from a finished simulation."""
        return result.read_dwords(HARNESS_SYMBOLS["cycle_samples"], self.num_samples)

    def read_total_cycles(self, result) -> int:
        return result.read_dword(HARNESS_SYMBOLS["total_cycles"])

    # ------------------------------------------------------- batch re-binding
    def encode_operands(self, vectors) -> tuple:
        """``(operand_words, blob)`` for ``vectors`` under this program's format.

        ``blob`` is byte-identical to the operand region a fresh
        :func:`build_test_program` over the same vectors would emit, so a
        warm simulator (or a patched image) loaded with it is
        indistinguishable from a cold build.
        """
        reference = GoldenReference(
            operation=self.config.operation, precision=self.config.precision
        )
        words_per_value = self.words_per_value
        mask64 = (1 << 64) - 1
        operand_words = []
        blob = bytearray()
        for vector in vectors:
            words = tuple(
                reference.encode_operand(operand) for operand in vector.operands
            )
            operand_words.append(words)
            for value in words:
                for i in range(words_per_value):
                    blob += struct.pack("<Q", (value >> (64 * i)) & mask64)
        return operand_words, bytes(blob)

    def rebind(self, vectors, encoded=None) -> "GeneratedProgram":
        """This program over a new same-shape vector set, without re-linking.

        Returns a new :class:`GeneratedProgram` whose image shares the text
        segment, symbol table and layout of this one; only the operand words
        in the data segment are replaced (``encoded`` may pass a precomputed
        :meth:`encode_operands` result to avoid encoding twice).  Byte-for-
        byte identical to re-running the full generate/assemble/link pipeline
        over the new vectors — that is the invariant batch mode rests on.
        """
        vectors = list(vectors)
        if len(vectors) != self.num_samples:
            raise ConfigurationError(
                f"rebind vector count {len(vectors)} != program num_samples "
                f"{self.num_samples}"
            )
        operand_words, blob = (
            encoded if encoded is not None else self.encode_operands(vectors)
        )
        address = self.image.symbol(HARNESS_SYMBOLS["operands"])
        segments = dict(self.image.segments)
        for name, (base, data) in segments.items():
            offset = address - base
            if 0 <= offset and offset + len(blob) <= len(data):
                segments[name] = (
                    base, data[:offset] + blob + data[offset + len(blob):]
                )
                image = type(self.image)(
                    segments=segments,
                    symbols=self.image.symbols,
                    entry=self.image.entry,
                )
                return replace(
                    self, image=image, vectors=vectors,
                    operand_words=operand_words,
                )
        raise ConfigurationError("operand region not found in any image segment")

    def scratch_span(self) -> tuple:
        """``(address, size)`` of the result buffers a warm rerun must zero.

        Covers the contiguous ``results`` / ``cycle_samples`` /
        ``total_cycles`` region (``num_samples`` stays — it is layout, not
        output).
        """
        start = self.image.symbol(HARNESS_SYMBOLS["results"])
        stop = self.image.symbol(HARNESS_SYMBOLS["total_cycles"]) + 8
        return start, stop - start


def _emit_kernel(builder: AsmBuilder, config: TestProgramConfig) -> str:
    label = kernel_label(config.fmt, config.operation, config.solution)
    if config.operation != "multiply":
        from repro.kernels.addsub_fma import emit_addsub_kernel, emit_fma_kernel

        spec = config.format_spec
        if config.operation == "fma":
            return emit_fma_kernel(
                builder, spec, label=label, variant=config.solution
            )
        return emit_addsub_kernel(
            builder,
            spec,
            label=label,
            operation=get_operation(config.operation).mnemonic,
            variant=config.solution,
        )
    use_accelerator = config.solution == SolutionKind.METHOD1
    if config.fmt == "decimal64":
        if config.solution == SolutionKind.SOFTWARE:
            return emit_software_mul_kernel(builder, label=label)
        return emit_method1_kernel(
            builder, label=label, use_accelerator=use_accelerator
        )
    from repro.kernels.wide_method1 import emit_wide_method1_kernel
    from repro.kernels.wide_mul import emit_wide_software_mul_kernel

    spec = config.format_spec
    if config.solution == SolutionKind.SOFTWARE:
        return emit_wide_software_mul_kernel(builder, spec, label=label)
    return emit_wide_method1_kernel(
        builder, spec, label=label, use_accelerator=use_accelerator
    )


def _emit_harness(builder: AsmBuilder, kernel_label: str, num_samples: int,
                  repetitions: int, words_per_value: int = 1,
                  arity: int = 2) -> None:
    b = builder
    operand_stride = 8 * arity * words_per_value
    result_stride = 8 * words_per_value
    b.text()
    b.label("_start")
    b.la("s0", HARNESS_SYMBOLS["operands"])
    b.la("s1", HARNESS_SYMBOLS["results"])
    b.la("s2", HARNESS_SYMBOLS["cycle_samples"])
    b.li("s3", num_samples)
    b.li("s4", 0)          # sample index
    b.li("s5", 0)          # total cycles
    b.beqz("s3", "harness_done")
    b.label("harness_loop")
    if words_per_value == 1:
        b.emit("ld", "s8", "s0", 0)   # X
        b.emit("ld", "s9", "s0", 8)   # Y
        if arity == 3:
            b.emit("ld", "s10", "s0", 16)  # Z
            b.li("s11", repetitions)
        else:
            b.li("s10", repetitions)
    else:
        b.emit("ld", "s8", "s0", 0)    # X low
        b.emit("ld", "s9", "s0", 8)    # X high
        b.emit("ld", "s10", "s0", 16)  # Y low
        b.emit("ld", "s11", "s0", 24)  # Y high
        # All of s0-s11 carry live harness state for two-word operands, so
        # the repetition count lives in gp (never touched by the kernels).
        # A two-word third operand has no callee-saved home left at all:
        # it is reloaded from the operand stream (s0 survives the call)
        # inside the repeat loop.
        b.li("gp", repetitions)
    b.rdcycle("s6")
    b.label("harness_repeat")
    if words_per_value == 1:
        b.mv("a0", "s8")
        b.mv("a1", "s9")
        if arity == 3:
            b.mv("a2", "s10")
            b.call(kernel_label)
            b.emit("addi", "s11", "s11", -1)
            b.bnez("s11", "harness_repeat")
        else:
            b.call(kernel_label)
            b.emit("addi", "s10", "s10", -1)
            b.bnez("s10", "harness_repeat")
    else:
        b.mv("a0", "s8")
        b.mv("a1", "s9")
        b.mv("a2", "s10")
        b.mv("a3", "s11")
        if arity == 3:
            b.emit("ld", "a4", "s0", 32)  # Z low
            b.emit("ld", "a5", "s0", 40)  # Z high
        b.call(kernel_label)
        b.emit("addi", "gp", "gp", -1)
        b.bnez("gp", "harness_repeat")
    b.rdcycle("s7")
    b.emit("sub", "s7", "s7", "s6")
    b.emit("sd", "a0", "s1", 0)
    if words_per_value > 1:
        b.emit("sd", "a1", "s1", 8)
    b.emit("sd", "s7", "s2", 0)
    b.emit("add", "s5", "s5", "s7")
    b.emit("addi", "s0", "s0", operand_stride)
    b.emit("addi", "s1", "s1", result_stride)
    b.emit("addi", "s2", "s2", 8)
    b.emit("addi", "s4", "s4", 1)
    b.branch("bne", "s4", "s3", "harness_loop")
    b.label("harness_done")
    b.la("t0", HARNESS_SYMBOLS["total_cycles"])
    b.emit("sd", "s5", "t0", 0)
    b.li("t1", TOHOST_ADDRESS)
    b.li("t2", 1)
    b.emit("sd", "t2", "t1", 0)
    b.label("harness_spin")
    b.j("harness_spin")


def draw_vectors(
    num_samples: int,
    seed: int,
    operand_classes=None,
    workload: str = None,
    database: VerificationDatabase = None,
    fmt: str = "decimal64",
    operation: str = "multiply",
) -> list:
    """The one vector-source branch every evaluation layer shares.

    The workload registry is the preferred source: any registered scenario
    (see docs/workloads.md) can be named by ``workload``.  Without a
    workload the legacy class-mix database path is used — and the
    ``paper-uniform`` workload reproduces that path bit for bit.
    ``EvaluationFramework``, ``CampaignCell`` and :func:`generate_vectors`
    all delegate here so the serial and sharded paths cannot drift apart.

    ``fmt`` selects the interchange format the vectors are sized for; the
    workload path checks the workload's declared format support first
    (see :attr:`repro.workloads.Workload.formats`).
    """
    if workload is not None:
        from repro.workloads import get_workload, workload_vectors

        return workload_vectors(
            get_workload(workload), num_samples, seed, fmt, operation
        )
    if database is None:
        database = VerificationDatabase(seed, fmt=fmt)
    if operand_classes is None:
        return database.generate_mix(num_samples, operation=operation)
    return database.generate_mix(num_samples, operand_classes, operation=operation)


def generate_vectors(config: TestProgramConfig,
                     database: VerificationDatabase = None) -> list:
    """The operand vectors a configuration implies (see :func:`draw_vectors`)."""
    return draw_vectors(
        config.num_samples,
        config.seed,
        operand_classes=config.operand_classes,
        workload=config.workload,
        database=database,
        fmt=config.fmt,
        operation=config.operation,
    )


def build_test_program(
    config: TestProgramConfig,
    vectors=None,
    database: VerificationDatabase = None,
) -> GeneratedProgram:
    """Generate, assemble and link one test program.

    ``vectors`` may be provided explicitly (e.g. to run the same operands
    through several solutions); otherwise they are drawn from the registered
    workload named by ``config.workload`` if set, else from ``database``
    (or a fresh one seeded from the configuration).
    """
    if vectors is None:
        vectors = generate_vectors(config, database=database)
    if len(vectors) != config.num_samples:
        raise ConfigurationError(
            f"vector count {len(vectors)} != configured num_samples {config.num_samples}"
        )

    reference = GoldenReference(operation=config.operation, precision=config.precision)
    builder = AsmBuilder()
    words_per_value = config.format_spec.words_per_value
    mask64 = (1 << 64) - 1

    # Data: lookup tables, operands, result/cycle buffers.  Multi-word
    # encodings are stored least-significant word first.
    emit_tables(builder)
    builder.data()
    builder.align(8)
    builder.label(HARNESS_SYMBOLS["operands"])
    arity = get_operation(config.operation).arity
    operand_words = []
    for vector in vectors:
        if len(vector.operands) != arity:
            raise ConfigurationError(
                f"vector {vector.index} carries {len(vector.operands)} "
                f"operands but operation {config.operation!r} takes {arity}"
            )
        words = tuple(
            reference.encode_operand(operand) for operand in vector.operands
        )
        operand_words.append(words)
        for value in words:
            builder.dword(
                *((value >> (64 * i)) & mask64 for i in range(words_per_value))
            )
    builder.label(HARNESS_SYMBOLS["results"])
    builder.space(8 * len(vectors) * words_per_value)
    builder.label(HARNESS_SYMBOLS["cycle_samples"])
    builder.space(8 * len(vectors))
    builder.label(HARNESS_SYMBOLS["total_cycles"])
    builder.dword(0)
    builder.label(HARNESS_SYMBOLS["num_samples"])
    builder.dword(len(vectors))

    # Text: harness first (entry point), then the kernel.
    _emit_harness(builder,
                  kernel_label(config.fmt, config.operation, config.solution),
                  len(vectors), config.repetitions,
                  words_per_value=words_per_value, arity=arity)
    label = _emit_kernel(builder, config)

    image = builder.link(entry_symbol="_start")
    return GeneratedProgram(
        image=image,
        config=config,
        vectors=list(vectors),
        kernel_label=label,
        operand_words=operand_words,
    )
