"""The paper's test-program generator.

Section III: "we also develop a test program generator written in C.  The
purpose of the generator is to configure the parameters ... including the
format of precision (double or quad), input data-type (rounding, overflow,
normal, underflow, etc.), type of the arithmetic operation, the number of
repetition per calculation, pattern of output (execution time or number of
cycle)".  :class:`~repro.testgen.config.TestProgramConfig` exposes exactly
those knobs and :func:`~repro.testgen.generator.build_test_program` turns a
configuration (plus vectors from the verification database) into a linked,
runnable RISC-V image.
"""

from repro.testgen.config import SolutionKind, TestProgramConfig
from repro.testgen.generator import GeneratedProgram, build_test_program, HARNESS_SYMBOLS

__all__ = [
    "SolutionKind",
    "TestProgramConfig",
    "GeneratedProgram",
    "build_test_program",
    "HARNESS_SYMBOLS",
]
