"""Command-line entry point for differential fuzz campaigns.

Typical runs::

    # default: 512 vectors, method1, spike+rocket+gem5, dual oracles
    PYTHONPATH=src python -m repro.fuzz --seed 2018 --budget 512

    # CI smoke: fixed seed, wall-clock capped
    PYTHONPATH=src python -m repro.fuzz --seed 2018 --budget 512 --time-limit 60

    # fuzz around one workload's operand distribution
    PYTHONPATH=src python -m repro.fuzz --budget 256 --workload carry-stress

    # replay a recorded reproducer from a previous --json report
    PYTHONPATH=src python -m repro.fuzz --replay fuzz_report.json

Exit status is non-zero when any divergence, oracle disagreement or check
failure was found (or a replayed reproducer still fails), so the command
slots directly into CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.fuzz.engine import (
    FuzzCampaign,
    FuzzConfig,
    Reproducer,
    replay,
)
from repro.testgen.config import SolutionKind
from repro.verification.differential import MODELS


def _parse_models(text: str):
    models = tuple(part.strip() for part in text.split(",") if part.strip())
    for model in models:
        if model not in MODELS:
            raise argparse.ArgumentTypeError(
                f"unknown model {model!r} (choose from {MODELS})"
            )
    if not models:
        raise argparse.ArgumentTypeError("--models needs at least one model")
    return models


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--seed", type=int, default=2018,
                        help="campaign seed (the whole run is a pure function of it)")
    parser.add_argument("--budget", type=int, default=512,
                        help="total vectors to simulate (default 512)")
    parser.add_argument("--batch-size", type=int, default=64,
                        help="vectors per generated test program (default 64)")
    parser.add_argument(
        "--solution", default=SolutionKind.METHOD1,
        choices=SolutionKind.ALL,
        help="solution kind to fuzz (default method1)",
    )
    parser.add_argument(
        "--models", type=_parse_models, default=MODELS,
        metavar="NAME[,NAME...]",
        help=f"models to cross-check (default {','.join(MODELS)})",
    )
    parser.add_argument(
        "--workload", default=None,
        help="seed the corpus from one registered workload "
             "(default: database classes + every registered workload)",
    )
    parser.add_argument(
        "--format", default="decimal64", dest="fmt", metavar="NAME",
        help="interchange format to fuzz: decimal64 (default) or decimal128 "
             "(mutator bounds, corpus and oracle contexts all follow; "
             "docs/formats.md)",
    )
    parser.add_argument(
        "--op", default="multiply", dest="operation", metavar="NAME",
        help="operation to fuzz: multiply (default), add, subtract or fma "
             "(aliases mul/sub/mac accepted; kernels, corpus shape and "
             "oracles all follow; docs/operations.md)",
    )
    parser.add_argument("--time-limit", type=float, default=None,
                        help="wall-clock cap in seconds (checked between batches)")
    parser.add_argument("--max-failures", type=int, default=3,
                        help="stop after this many distinct failures (default 3)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="record failing batches without shrinking them")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the campaign report (with reproducers) as JSON")
    parser.add_argument(
        "--replay", metavar="PATH", default=None,
        help="replay the reproducers recorded in a --json report and exit",
    )
    return parser


def _replay_report(path: str) -> int:
    with open(path) as handle:
        data = json.load(handle)
    reproducers = [
        Reproducer.from_json(item) for item in data.get("failures", [])
    ]
    if not reproducers:
        print(f"{path}: no recorded failures to replay")
        return 0
    still_failing = 0
    for reproducer in reproducers:
        outcome = replay(reproducer)
        status = "still fails" if outcome.failed else "no longer fails"
        if outcome.failed:
            still_failing += 1
        print(
            f"[{reproducer.kind}] batch {reproducer.batch_index} "
            f"({len(reproducer.vectors)} vector(s)): {status}"
        )
    return 1 if still_failing else 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.replay:
        return _replay_report(args.replay)

    from repro.decnumber.formats import resolve_format_name
    from repro.errors import DecimalError

    try:
        fmt = resolve_format_name(args.fmt)
    except DecimalError as error:
        build_parser().error(str(error))
    from repro.decnumber.operations import resolve_operation_name

    try:
        operation = resolve_operation_name(args.operation)
    except DecimalError as error:
        build_parser().error(str(error))
    if args.workload is not None:
        from repro.workloads import get_workload

        workload = get_workload(args.workload)  # raises with suggestions
        if not workload.supports_format(fmt):
            build_parser().error(
                f"workload {args.workload!r} does not support format "
                f"{fmt!r} (declares {workload.formats})"
            )
        if not workload.supports_operation(operation):
            build_parser().error(
                f"workload {args.workload!r} does not support operation "
                f"{operation!r} (declares {workload.operations}); see "
                "docs/operations.md"
            )
    config = FuzzConfig(
        seed=args.seed,
        budget=args.budget,
        batch_size=args.batch_size,
        solution=args.solution,
        models=args.models,
        workload=args.workload,
        shrink=not args.no_shrink,
        max_failures=args.max_failures,
        time_limit=args.time_limit,
        fmt=fmt,
        operation=operation,
    )
    report = FuzzCampaign(config).run()
    print(report.describe())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_summary(), handle, indent=2)
            handle.write("\n")
        print(f"report -> {os.path.abspath(args.json)}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
