"""Coverage-guided differential fuzzing of the decimal64 multiply pipeline.

The fuzz subsystem manufactures regression tests instead of enumerating
them: seeded mutation over the verification database's operand classes and
the registered workloads (:mod:`repro.fuzz.mutate`), coverage feedback from
:class:`~repro.verification.coverage.CoverageTracker` steering generation
toward unhit result conditions, cross-model + dual-oracle checking of every
batch (:mod:`repro.verification.differential`), and delta-debugging shrinks
of any failure into a replayable minimal reproducer
(:mod:`repro.fuzz.shrink`).

Run it from the command line::

    PYTHONPATH=src python -m repro.fuzz --seed 2018 --budget 512

or programmatically via :func:`run_fuzz_campaign` / :class:`FuzzCampaign`.
"""

from repro.fuzz.engine import (
    FuzzCampaign,
    FuzzConfig,
    FuzzReport,
    Reproducer,
    replay,
    run_fuzz_campaign,
    vector_from_json,
    vector_to_json,
)
from repro.fuzz.mutate import MUTATORS, MUTATORS_BY_NAME, Mutator, choose_mutator
from repro.fuzz.shrink import ddmin, shrink_failure, simplify_vectors

__all__ = [
    "FuzzCampaign",
    "FuzzConfig",
    "FuzzReport",
    "Reproducer",
    "replay",
    "run_fuzz_campaign",
    "vector_from_json",
    "vector_to_json",
    "MUTATORS",
    "MUTATORS_BY_NAME",
    "Mutator",
    "choose_mutator",
    "ddmin",
    "shrink_failure",
    "simplify_vectors",
]
