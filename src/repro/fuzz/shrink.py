"""Shrink a failing vector batch to a minimal reproducer.

Two stages, both driven by a caller-supplied ``predicate(vectors) -> bool``
that re-runs the differential/oracle check and returns True while the
failure still reproduces:

1. **Subset minimization** (:func:`ddmin`): classic delta debugging over the
   batch.  Samples are architecturally independent in the generated test
   programs, so this usually converges to a single vector, but the algorithm
   is sound even for failures that need several vectors (e.g. cache-state
   bugs in a timing model).
2. **Operand simplification** (:func:`simplify_vectors`): each surviving
   vector's operands are simplified — replace an operand with 1, strip
   coefficient digits, zero the exponent, clear the sign — as long as the
   failure keeps reproducing, so the reproducer a human reads is as small
   as the bug allows.

Every predicate call costs one co-simulation of the candidate subset, so
both stages share one evaluation budget.
"""

from __future__ import annotations

from dataclasses import replace

from repro.decnumber.number import DecNumber
from repro.verification.database import VerificationVector


class _Budget:
    """Shared evaluation-count budget across the shrink stages."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        if self.spent >= self.limit:
            return False
        self.spent += 1
        return True


def ddmin(vectors, predicate, budget: _Budget) -> list:
    """Minimal failing subset of ``vectors`` by delta debugging.

    ``predicate`` must already hold for the full list.  Returns the smallest
    subset found within the evaluation budget (always still failing).
    """
    current = list(vectors)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        chunks = [
            current[start:start + chunk]
            for start in range(0, len(current), chunk)
        ]
        reduced = False
        for index, subset in enumerate(chunks):
            if len(subset) == len(current):
                continue
            if not budget.take():
                return current
            if predicate(subset):
                current = subset
                granularity = 2
                reduced = True
                break
            complement = [
                vector
                for other, piece in enumerate(chunks)
                if other != index
                for vector in piece
            ]
            if complement and len(complement) < len(current):
                if not budget.take():
                    return current
                if predicate(complement):
                    current = complement
                    granularity = max(2, granularity - 1)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


_ONE = DecNumber(0, 1, 0)


def _operand_candidates(value: DecNumber):
    """Simpler stand-ins for one operand, most aggressive first."""
    candidates = []
    if value != _ONE:
        candidates.append(_ONE)
    if not value.is_finite:
        # Specials simplify only via payload/sign; drop the payload first.
        if value.coefficient:
            candidates.append(
                DecNumber(value.sign, 0, 0, value.kind)
            )
        if value.sign:
            candidates.append(DecNumber(0, value.coefficient, 0, value.kind))
        return candidates
    text = str(value.coefficient)
    if len(text) > 1:
        candidates.append(
            DecNumber(value.sign, int(text[: len(text) // 2]), value.exponent)
        )
        candidates.append(DecNumber(value.sign, int(text[0]), value.exponent))
    if value.exponent:
        candidates.append(DecNumber(value.sign, value.coefficient, 0))
        candidates.append(
            DecNumber(value.sign, value.coefficient, value.exponent // 2)
        )
    if value.sign:
        candidates.append(DecNumber(0, value.coefficient, value.exponent))
    return candidates


def simplify_vectors(vectors, predicate, budget: _Budget) -> list:
    """Simplify each vector's operands while the failure keeps reproducing."""
    current = list(vectors)
    for position in range(len(current)):
        progress = True
        while progress and budget.spent < budget.limit:
            progress = False
            vector = current[position]
            for attribute in ("x", "y"):
                for candidate in _operand_candidates(getattr(vector, attribute)):
                    trial = replace(vector, **{attribute: candidate})
                    trial_list = list(current)
                    trial_list[position] = trial
                    if not budget.take():
                        return current
                    if predicate(trial_list):
                        current = trial_list
                        progress = True
                        break
                if progress:
                    break
    return current


def shrink_failure(vectors, predicate, max_evaluations: int = 48) -> list:
    """Full shrink: subset minimization, then per-operand simplification.

    Returns the original list unchanged if the failure does not reproduce
    on it (a flaky predicate), so callers always get *a* failing witness.
    """
    vectors = list(vectors)
    budget = _Budget(max_evaluations)
    if not budget.take() or not predicate(vectors):
        return vectors
    minimal = ddmin(vectors, predicate, budget)
    return simplify_vectors(minimal, predicate, budget)
