"""Operand-pair mutators for the coverage-guided fuzz engine.

Every mutator takes a seeded ``random.Random`` and an ``(x, y)`` pair of
:class:`~repro.decnumber.number.DecNumber` operands and returns a mutated
pair.  Mutations stay **canonical by construction for their format** —
coefficients of at most ``precision`` digits, exponents inside
``[etiny, etop]``, NaN payloads small enough for the trailing significand —
so every mutated operand round-trips bit-exactly through the interchange
encoding and the oracles judge exactly the value the kernel saw.

The catalogue is built per interchange format by
:func:`mutators_for_format`: every bound (digit counts, exponent envelope,
payload width) comes from the :class:`~repro.decnumber.formats.FormatSpec`,
never from literals, so decimal64 and decimal128 fuzz with the same
strategies sized to their own envelopes.  The module-level :data:`MUTATORS`
is the decimal64 instance (the historical default).

Each mutator also declares the result *conditions* (from
:data:`repro.verification.coverage.CoverageTracker.CONDITIONS`) it tends to
induce; the engine uses those declarations to steer generation toward
conditions the campaign has not hit yet.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.decnumber.formats import FormatSpec, get_format
from repro.decnumber.number import DecNumber


@dataclass(frozen=True)
class Mutator:
    """A named mutation plus the result conditions it tends to induce."""

    name: str
    apply: object                     # callable(rng, x, y) -> (x, y)
    targets: frozenset = frozenset()  # CoverageTracker condition names

    def __call__(self, rng, x, y):
        return self.apply(rng, x, y)


def _pick_side(rng: random.Random, x, y):
    """Split the pair into (mutated operand, kept operand, reassembler)."""
    if rng.random() < 0.5:
        return x, y, lambda mutated, kept: (mutated, kept)
    return y, x, lambda mutated, kept: (kept, mutated)


def clamp_finite(
    sign: int, coefficient: int, exponent: int, spec: FormatSpec = None
) -> DecNumber:
    """A finite operand forced into exact representability under ``spec``."""
    spec = spec if spec is not None else get_format("decimal64")
    coefficient = abs(int(coefficient)) % (spec.max_coefficient + 1)
    exponent = max(spec.etiny, min(spec.etop, int(exponent)))
    return DecNumber(sign & 1, coefficient, exponent)


def mutators_for_format(fmt) -> tuple:
    """The full mutator catalogue bound to one interchange format.

    Targets are matched to :data:`~repro.verification.coverage.
    CoverageTracker.CONDITIONS`; bounds all derive from the format spec.
    """
    spec = get_format(fmt)
    min_exponent = spec.etiny
    max_exponent = spec.etop
    max_digits = spec.precision

    def _clamp(sign, coefficient, exponent):
        return clamp_finite(sign, coefficient, exponent, spec)

    def _as_finite(rng, value):
        """``value`` if finite, else a small finite stand-in to mutate from."""
        if value.is_finite:
            return value
        return DecNumber(value.sign, rng.randint(1, 9_999), rng.randint(-8, 8))

    # --------------------------------------------------------------- mutators
    def digit_grow(rng, x, y):
        """Widen one coefficient to near-full precision (inexact products)."""
        target, kept, rebuild = _pick_side(rng, x, y)
        target = _as_finite(rng, target)
        digits = rng.randint(max_digits - 1, max_digits)
        low = 10 ** (digits - 1)
        grown = target.coefficient
        while grown < low:
            grown = grown * 10 + rng.randint(0, 9)
        return rebuild(_clamp(target.sign, grown, target.exponent), kept)

    def digit_shrink(rng, x, y):
        """Drop trailing digits of one coefficient (toward exact products)."""
        target, kept, rebuild = _pick_side(rng, x, y)
        target = _as_finite(rng, target)
        keep = rng.randint(1, max(1, target.digits // 2))
        shrunk = int(str(target.coefficient)[:keep] or "0")
        return rebuild(_clamp(target.sign, shrunk, target.exponent), kept)

    def digit_tweak(rng, x, y):
        """Replace one digit of one coefficient."""
        target, kept, rebuild = _pick_side(rng, x, y)
        target = _as_finite(rng, target)
        digits = list(str(target.coefficient))
        digits[rng.randrange(len(digits))] = str(rng.randint(0, 9))
        return rebuild(
            _clamp(target.sign, int("".join(digits)), target.exponent), kept
        )

    def exponent_up(rng, x, y):
        """Push one exponent toward the top of the range (overflow/clamping)."""
        target, kept, rebuild = _pick_side(rng, x, y)
        target = _as_finite(rng, target)
        exponent = rng.randint(max_exponent // 2, max_exponent)
        return rebuild(_clamp(target.sign, target.coefficient, exponent), kept)

    def exponent_down(rng, x, y):
        """Push one exponent toward the bottom (underflow/subnormal)."""
        target, kept, rebuild = _pick_side(rng, x, y)
        target = _as_finite(rng, target)
        exponent = rng.randint(min_exponent, min_exponent // 2)
        return rebuild(_clamp(target.sign, target.coefficient, exponent), kept)

    def exponent_nudge(rng, x, y):
        """Shift one exponent by a small delta."""
        target, kept, rebuild = _pick_side(rng, x, y)
        target = _as_finite(rng, target)
        exponent = target.exponent + rng.randint(-5, 5)
        return rebuild(_clamp(target.sign, target.coefficient, exponent), kept)

    def sign_flip(rng, x, y):
        """Flip the sign of one operand (specials included)."""
        target, kept, rebuild = _pick_side(rng, x, y)
        return rebuild(target.copy_negate(), kept)

    def make_zero(rng, x, y):
        """Replace one operand with a signed zero of arbitrary exponent."""
        target, kept, rebuild = _pick_side(rng, x, y)
        zero = DecNumber(
            rng.randint(0, 1), 0, rng.randint(min_exponent, max_exponent)
        )
        return rebuild(zero, kept)

    def make_infinity(rng, x, y):
        """Replace one operand with a signed infinity."""
        target, kept, rebuild = _pick_side(rng, x, y)
        return rebuild(DecNumber.infinity(rng.randint(0, 1)), kept)

    def make_nan(rng, x, y):
        """Replace one operand with a quiet or signaling NaN (with payload)."""
        target, kept, rebuild = _pick_side(rng, x, y)
        payload = rng.randint(0, min(spec.max_payload, 999_999))
        nan = (
            DecNumber.snan(payload, rng.randint(0, 1))
            if rng.random() < 0.5
            else DecNumber.qnan(payload, rng.randint(0, 1))
        )
        return rebuild(nan, kept)

    def all_nines(rng, x, y):
        """Replace one coefficient with all nines (maximal carry chains)."""
        target, kept, rebuild = _pick_side(rng, x, y)
        target = _as_finite(rng, target)
        coefficient = 10 ** rng.randint(max_digits // 2, max_digits) - 1
        return rebuild(
            _clamp(target.sign, coefficient, target.exponent), kept
        )

    def sparse(rng, x, y):
        """Replace one operand with one significant digit, wide exponent."""
        target, kept, rebuild = _pick_side(rng, x, y)
        return rebuild(
            DecNumber(
                rng.randint(0, 1),
                rng.randint(1, 9),
                rng.randint(min_exponent, max_exponent),
            ),
            kept,
        )

    def swap(rng, x, y):
        """Swap the operands (commutativity stress on asymmetric kernels)."""
        return y, x

    return (
        Mutator("digit-grow", digit_grow, frozenset({"inexact", "rounded"})),
        Mutator("digit-shrink", digit_shrink, frozenset({"exact"})),
        Mutator("digit-tweak", digit_tweak),
        Mutator("exponent-up", exponent_up,
                frozenset({"overflow", "clamped", "result_infinity"})),
        Mutator("exponent-down", exponent_down,
                frozenset({"underflow", "subnormal", "result_zero"})),
        Mutator("exponent-nudge", exponent_nudge),
        Mutator("sign-flip", sign_flip),
        Mutator("make-zero", make_zero, frozenset({"result_zero", "clamped"})),
        Mutator("make-infinity", make_infinity,
                frozenset({"result_infinity", "invalid", "result_nan"})),
        Mutator("make-nan", make_nan, frozenset({"invalid", "result_nan"})),
        Mutator("all-nines", all_nines, frozenset({"inexact", "rounded"})),
        Mutator("sparse", sparse, frozenset({"exact", "clamped"})),
        Mutator("swap", swap),
    )


#: Decimal64 bounds, re-exported for callers that predate the format axis.
MIN_EXPONENT = get_format("decimal64").etiny     # -398
MAX_EXPONENT = get_format("decimal64").etop      # 369
MAX_DIGITS = get_format("decimal64").precision   # 16

#: The decimal64 catalogue (the historical default surface).
MUTATORS = mutators_for_format("decimal64")

MUTATORS_BY_NAME = {mutator.name: mutator for mutator in MUTATORS}


def choose_mutator(
    rng: random.Random, unhit_conditions=frozenset(), mutators=MUTATORS
) -> Mutator:
    """Pick a mutator, weighted toward those targeting unhit conditions.

    Every mutator keeps a base weight of 1 so generation never collapses
    onto a single strategy; a mutator whose declared targets intersect the
    campaign's unhit condition set gets a large bonus, which is what makes
    the generation *coverage-guided* rather than uniformly random.
    """
    unhit = frozenset(unhit_conditions)
    weights = [
        1 + (6 if mutator.targets & unhit else 0) for mutator in mutators
    ]
    return rng.choices(mutators, weights=weights, k=1)[0]
