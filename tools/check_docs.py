#!/usr/bin/env python3
"""Docs consistency check: dead links and stale file references.

Scans ``README.md``, ``PAPER.md`` and every ``docs/*.md`` for

* **intra-repo markdown links** — ``[text](target)`` where ``target`` is not
  an external URL or a bare anchor must resolve to an existing file or
  directory relative to the referencing document (fragments are stripped);
* **repo paths quoted in ``sh``/``python`` code fences** — any token that
  looks like a path into a tracked top-level directory (``src/…``,
  ``docs/…``, ``examples/…``, ``benchmarks/…``, ``tools/…``, ``tests/…``)
  or a root-level ``*.md``/``*.py`` file must exist, so quickstart commands
  and examples cannot silently rot.

Exit status is non-zero if anything is dangling; every finding is printed
as ``file:line: message``.  Run locally or in CI from anywhere inside the
repository::

    python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Top-level directories whose paths inside code fences are checked.
CHECKED_DIRS = ("src", "docs", "examples", "benchmarks", "tools", "tests")

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"^```(\w*)\s*$")
_DIR_PATH_RE = re.compile(
    r"(?<![\w./-])(?:%s)/[\w.][\w./-]*" % "|".join(CHECKED_DIRS)
)
_ROOT_FILE_RE = re.compile(r"(?<![\w./@-])[A-Za-z][\w.-]*\.(?:md|py)\b")
_EXTERNAL = ("http://", "https://", "mailto:")


def _documents():
    docs = [REPO_ROOT / "README.md", REPO_ROOT / "PAPER.md"]
    docs.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in docs if path.exists()]


def _exists(target: Path) -> bool:
    return target.exists()


def check_links(path: Path, lines) -> list:
    """Dead intra-repo markdown links (checked in prose and fences alike)."""
    errors = []
    for lineno, line in enumerate(lines, 1):
        for target in _LINK_RE.findall(line):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not _exists(resolved):
                try:
                    shown = resolved.relative_to(REPO_ROOT)
                except ValueError:
                    shown = resolved  # link escapes the repository root
                errors.append(
                    f"{path.relative_to(REPO_ROOT)}:{lineno}: dead link "
                    f"({target!r} -> missing {shown})"
                )
    return errors


def _fence_blocks(lines):
    """Yield (language, lineno, line) for every line inside a code fence."""
    language = None
    for lineno, line in enumerate(lines, 1):
        match = _FENCE_RE.match(line.strip())
        if match:
            language = match.group(1).lower() if language is None else None
            continue
        if language is not None:
            yield language, lineno, line


def check_fence_paths(path: Path, lines) -> list:
    """Stale repo-path references inside sh/python code fences."""
    errors = []
    for language, lineno, line in _fence_blocks(lines):
        if language not in ("sh", "bash", "shell", "python", "py"):
            continue
        candidates = set(_DIR_PATH_RE.findall(line))
        candidates.update(_ROOT_FILE_RE.findall(line))
        for candidate in candidates:
            cleaned = candidate.rstrip("/.,:;")
            # Both dir-prefixed paths and bare *.md / *.py names resolve
            # against the repo root (the working directory every documented
            # command assumes).
            resolved = REPO_ROOT / cleaned
            if not _exists(resolved):
                errors.append(
                    f"{path.relative_to(REPO_ROOT)}:{lineno}: code fence "
                    f"references missing file {cleaned!r}"
                )
    return errors


def main() -> int:
    errors = []
    documents = _documents()
    for path in documents:
        lines = path.read_text(encoding="utf-8").splitlines()
        errors.extend(check_links(path, lines))
        errors.extend(check_fence_paths(path, lines))
    for error in sorted(errors):
        print(error)
    print(
        f"check_docs: {len(documents)} documents, "
        f"{len(errors)} problem(s)", file=sys.stderr
    )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
