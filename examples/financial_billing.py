#!/usr/bin/env python3
"""Financial-workload example: telco-style billing with decimal64 arithmetic.

The paper motivates decimal hardware with "financial applications [that] need
to keep the quality of their customer service concurrently with the back-end
computing process".  This example models such a back-end batch: N call records
are rated (duration x tariff) in decimal64, exactly the operation the
co-design accelerates.

It then answers the capacity-planning question the framework exists for: how
many records per second could an embedded Rocket-class core rate with and
without the Method-1 accelerator?

Usage::

    python examples/financial_billing.py [num_records]
"""

import random
import sys

from repro.core import EvaluationFramework
from repro.core.method1 import FunctionalHardware, Method1HostModel
from repro.decnumber import DecNumber, decimal64
from repro.testgen.config import SolutionKind
from repro.verification.database import VerificationVector


def make_call_records(count: int, seed: int = 99):
    """Generate (duration_seconds, tariff_per_second) pairs as decimal64."""
    rng = random.Random(seed)
    records = []
    for index in range(count):
        duration = DecNumber(0, rng.randint(1, 7200 * 100), -2)        # seconds
        tariff = DecNumber(0, rng.randint(1, 99999), -7)               # $/second
        records.append(
            VerificationVector(x=duration, y=tariff, operand_class="billing",
                               index=index)
        )
    return records


def main() -> None:
    num_records = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    records = make_call_records(num_records)

    # Functional rating pass (host model of Method-1, bit-exact results).
    rater = Method1HostModel(hardware=FunctionalHardware())
    total = DecNumber(0, 0, -2)
    from repro.decnumber import DECIMAL64_CONTEXT, add

    for record in records:
        charge = rater.multiply(record.x, record.y)
        total = add(total, charge, DECIMAL64_CONTEXT())
    print(f"Rated {num_records} call records; total charge: {total} USD")
    print(f"(encoded as decimal64: 0x{decimal64.encode(total):016x})")

    # Capacity planning: cycles per rating operation on the embedded core.
    framework = EvaluationFramework(num_samples=num_records, seed=7)
    framework.vectors = records
    frequency_hz = framework.rocket_config.frequency_hz
    print(f"\nRocket-class core at {frequency_hz / 1e9:.1f} GHz:")
    for kind in (SolutionKind.SOFTWARE, SolutionKind.METHOD1):
        report = framework.run_cycle_accurate(kind).cycle_report
        rate = frequency_hz / report.avg_total_cycles
        print(
            f"  {report.solution_name:<36s} {report.avg_total_cycles:7.0f} "
            f"cycles/record  ->  {rate / 1e6:6.2f} M records/s"
        )


if __name__ == "__main__":
    main()
