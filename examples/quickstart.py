#!/usr/bin/env python3
"""Quickstart: reproduce the paper's Table IV on a small operand set.

Runs the three decimal-multiplication solutions (Method-1 with the RoCC
accelerator, the pure-software baseline, and Method-1 with dummy functions)
over the same operand mix, verifies the verifiable ones against the golden
IEEE 754-2008 library, and prints the cycle table with the paper's published
numbers next to it.

Usage::

    python examples/quickstart.py [num_samples]
"""

import sys

from repro.core import EvaluationFramework, reporting
from repro.testgen.config import SolutionKind


def main() -> None:
    num_samples = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    print(f"Evaluating decimal64 multiplication over {num_samples} samples ...")

    framework = EvaluationFramework(num_samples=num_samples, seed=2018)
    table_iv = framework.evaluate_table_iv()

    print()
    print(reporting.render_table_iv(table_iv))
    print()

    speedups = table_iv.speedups()
    method1 = table_iv.reports[SolutionKind.METHOD1]
    print(
        f"Method-1 with the accelerator is {speedups[SolutionKind.METHOD1]:.2f}x "
        f"faster than the software baseline "
        f"(paper: 2.73x); the dummy-function estimate gives "
        f"{speedups[SolutionKind.METHOD1_DUMMY]:.2f}x (paper: 2.27x)."
    )
    print(
        f"Hardware part: {method1.avg_hw_cycles:.0f} cycles/multiplication across "
        f"{method1.rocc_commands // num_samples} RoCC commands."
    )
    print()
    print("Hardware overhead of the Method-1 accelerator:")
    print(framework.hardware_overhead().render())


if __name__ == "__main__":
    main()
