"""Tour of the workload registry: one mini-campaign, three scenarios.

Runs a small Table IV-style campaign across three registered workloads —
the paper's own mix, telco call rating and the BCD carry-chain stress —
through the sharded campaign engine, then prints the per-workload tables
and the cross-workload speedup comparison.  This is the quickest way to
see that the co-design's advantage is *workload-dependent*: carry-heavy
coefficients gain more from the accelerator than sparse ones.

Run from the repository root::

    PYTHONPATH=src python examples/workload_tour.py [samples] [workers]

See docs/workloads.md for the registry API and how to add a scenario.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core import reporting  # noqa: E402
from repro.core.campaign import run_workload_campaign  # noqa: E402
from repro.testgen.config import SolutionKind  # noqa: E402
from repro.workloads import get_workload  # noqa: E402

TOUR = ("paper-uniform", "telco-billing", "carry-stress")


def main(argv=None) -> None:
    argv = argv if argv is not None else sys.argv
    samples = int(argv[1]) if len(argv) > 1 else 200
    workers = int(argv[2]) if len(argv) > 2 else (os.cpu_count() or 1)

    print(f"Running {len(TOUR)} workloads x 2 solutions, "
          f"{samples} samples each, {workers} workers\n")
    for name in TOUR:
        print(f"  {name:<16s} {get_workload(name).description}")
    print()

    result = run_workload_campaign(
        TOUR,
        num_samples=samples,
        kinds=(SolutionKind.METHOD1, SolutionKind.SOFTWARE),
        workers=workers,
    )
    print(reporting.render_workload_tables(result))
    print()
    print(reporting.render_workload_matrix(result))
    print()
    print(reporting.render_campaign(result))


if __name__ == "__main__":
    main()
