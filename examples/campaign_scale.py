"""Paper-scale evaluation with the sharded multiprocess campaign engine.

The paper's tables average over 8,000 constrained-random samples.  This
example runs the Table IV experiment through the campaign engine — one cell
per solution, each cell's vector set sharded across worker processes — and
shows that the merged result matches the serial framework exactly when each
cell stays a single shard.

Run from the repository root::

    PYTHONPATH=src python examples/campaign_scale.py [samples] [workers]
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core import reporting  # noqa: E402
from repro.core.campaign import run_table_iv_campaign  # noqa: E402
from repro.core.evaluation import EvaluationFramework  # noqa: E402


def main(argv=None) -> None:
    argv = argv if argv is not None else sys.argv
    samples = int(argv[1]) if len(argv) > 1 else 200
    workers = int(argv[2]) if len(argv) > 2 else (os.cpu_count() or 1)

    # Fan the three Table IV cells out over worker processes.  With the
    # default shards_per_cell=1 every cell is still measured in a single
    # simulator run, so the merged table is bit-identical to the serial one.
    result = run_table_iv_campaign(num_samples=samples, workers=workers)
    table = result.table_iv()
    print(reporting.render_table_iv(table))
    print()
    print(reporting.render_campaign(result))

    # Cross-check against the serial framework at the same seed.
    serial = EvaluationFramework(num_samples=samples).evaluate_table_iv()
    identical = serial.rows() == table.rows()
    print(f"\nserial evaluate_table_iv rows identical: {identical}")

    # For throughput-oriented campaigns, shard inside the cells too: the
    # measurement then has per-shard cache warm-up (documented in
    # docs/campaigns.md) but the run scales with the number of cores.
    sharded = run_table_iv_campaign(
        num_samples=samples, workers=workers, shards_per_cell=max(2, workers)
    )
    print(f"sharded run: {sharded.total_shards} shards, "
          f"wall {sharded.wall_seconds:.2f}s vs "
          f"simulator time {sharded.total_sim_wall_seconds:.2f}s")


if __name__ == "__main__":
    main()
