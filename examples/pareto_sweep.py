#!/usr/bin/env python3
"""Sweep accelerator configurations and print the co-design Pareto points.

The paper's premise is that software-hardware co-design "can provide several
Pareto points ... in terms of hardware cost and performance".  This example
uses the framework to evaluate a family of design points:

* the all-software baseline (zero extra hardware),
* Method-1 with a narrow (time-multiplexed) BCD adder,
* Method-1 with the default 20-digit adder,
* Method-1 with a full accumulator-width adder,
* Method-1 plus a full hardware BCD multiplier (DEC_MUL capable),

and reports which of them are Pareto-optimal in (cycles, gate equivalents).

Usage::

    python examples/pareto_sweep.py [num_samples]
"""

import sys
from dataclasses import replace

from repro.core import EvaluationFramework, ParetoAnalyzer, reporting
from repro.rocc.decimal_accel import DecimalAcceleratorConfig
from repro.testgen.config import SolutionKind


def main() -> None:
    num_samples = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    framework = EvaluationFramework(num_samples=num_samples, seed=11,
                                    verify_functionally=False)
    analyzer = ParetoAnalyzer(framework)

    # Point 1: no dedicated hardware at all.
    analyzer.evaluate_solution(framework.solutions[SolutionKind.SOFTWARE])

    # Points 2-5: Method-1 with increasingly capable accelerators.
    method1 = framework.solutions[SolutionKind.METHOD1]
    variants = [
        ("Method-1 (narrow 17-digit adder)",
         DecimalAcceleratorConfig(adder_width_digits=17)),
        ("Method-1 (default 20-digit adder)",
         DecimalAcceleratorConfig()),
        ("Method-1 (full-width 32-digit adder)",
         DecimalAcceleratorConfig(adder_width_digits=32)),
        ("Method-1 + hardware BCD multiplier",
         DecimalAcceleratorConfig(include_multiplier=True)),
    ]
    for name, config in variants:
        analyzer.evaluate_solution(
            replace(method1, name=name, accelerator_config=config)
        )

    print()
    print(reporting.render_pareto(analyzer.points))
    print()
    frontier = analyzer.frontier()
    print("Pareto frontier (cheapest-to-fastest):")
    for point in frontier:
        print(
            f"  {point.name:<40s} {point.avg_cycles:7.0f} cycles, "
            f"{point.gate_equivalents:9.0f} GE"
        )


if __name__ == "__main__":
    main()
