#!/usr/bin/env python3
"""Framework-user tutorial: define, invoke and measure a custom instruction.

Section IV-B of the paper describes how framework users call accelerator
functions through generated macros and in-line assembly.  This example walks
the same path for the DEC_CNV (binary -> BCD) instruction:

1. generate the macro / hex encoding the paper prints for ``DEC_ADD_rocc``,
2. write a tiny bare-metal program that converts a binary value to BCD on the
   accelerator and adds two BCD numbers,
3. run it functionally on the SPIKE-like simulator,
4. run it on the cycle-accurate Rocket model and report where the cycles went.

Usage::

    python examples/custom_instruction.py
"""

from repro.asm import AsmBuilder, macros
from repro.asm.program import TOHOST_ADDRESS
from repro.decnumber.bcd import bcd_to_int
from repro.rocc import DecimalAccelerator
from repro.rocket import RocketEmulator
from repro.sim import SpikeSimulator


def build_program(value_a: int, value_b: int):
    """A bare-metal program: BCD(value_a) + BCD(value_b) via the accelerator."""
    b = AsmBuilder()
    b.data()
    b.label("result")
    b.dword(0, 0)
    b.text()
    b.label("_start")
    # Convert both binary operands to BCD with DEC_CNV (xd=1: wait for result).
    b.li("a0", value_a)
    b.rocc("DEC_CNV", rd="a2", rs1="a0", xd=True, xs1=True)
    b.li("a1", value_b)
    b.rocc("DEC_CNV", rd="a3", rs1="a1", xd=True, xs1=True)
    # BCD addition through the carry-lookahead adder (DEC_ADD).
    b.rocc("DEC_ADD", rd="a4", rs1="a2", rs2="a3", xd=True, xs1=True, xs2=True)
    b.la("t0", "result")
    b.emit("sd", "a4", "t0", 0)
    b.rdcycle("t1")
    b.emit("sd", "t1", "t0", 8)
    b.li("t2", TOHOST_ADDRESS)
    b.li("t3", 1)
    b.emit("sd", "t3", "t2", 0)
    b.label("spin")
    b.j("spin")
    return b.link()


def main() -> None:
    print("Generated macro (the framework's equivalent of the paper's example):")
    macro = macros.make_macro("DEC_CNV", rd=12, rs1=11, rs2=0, xs2=False)
    print(macro.c_wrapper())

    value_a, value_b = 123456789, 987654321
    image = build_program(value_a, value_b)

    functional = SpikeSimulator(image, accelerator=DecimalAccelerator()).run()
    bcd_sum = functional.read_dword("result")
    print(f"Functional run (SPIKE): BCD result 0x{bcd_sum:016x} "
          f"= {bcd_to_int(bcd_sum)} (expected {value_a + value_b})")

    accelerator = DecimalAccelerator()
    timed = RocketEmulator(image, accelerator=accelerator).run()
    print(
        f"Cycle-accurate run (Rocket + RoCC): {timed.cycles} cycles total, "
        f"{timed.hw_cycles} in the accelerator "
        f"({timed.rocc_commands} RoCC commands, "
        f"{timed.instructions_retired} instructions)."
    )
    print(
        "Accelerator function usage: "
        + ", ".join(f"{name}x{count}" for name, count in
                    sorted(accelerator.function_counts.items()))
    )


if __name__ == "__main__":
    main()
