"""Tests for the decimal library: DPD, BCD, arithmetic, interchange formats."""

import decimal
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.decnumber import (
    Context,
    DECIMAL64_CONTEXT,
    DECIMAL128_CONTEXT,
    DecNumber,
    ROUND_CEILING,
    ROUND_DOWN,
    ROUND_FLOOR,
    ROUND_HALF_EVEN,
    ROUND_HALF_UP,
    ROUND_UP,
    add,
    bcd,
    compare,
    decimal64,
    decimal128,
    dpd,
    fma,
    multiply,
    subtract,
)
from repro.decnumber.arith import absolute, finalize, minus, round_coefficient
from repro.decnumber.formats import DECIMAL64, DECIMAL128
from repro.errors import ConfigurationError, DecimalError


# ---------------------------------------------------------------------------
# DPD codec
# ---------------------------------------------------------------------------
class TestDpd:
    def test_roundtrip_all_values(self):
        for value in range(1000):
            assert dpd.decode_declet(dpd.encode_declet(value)) == value

    def test_small_digits_identity_packing(self):
        # Three small digits keep their BCD bits in place: 0b0010101110 = 2,5,6.
        assert dpd.encode_declet(256) == 0b0101010110

    def test_all_declets_decode(self):
        values = {dpd.decode_declet(declet) for declet in range(1024)}
        assert values == set(range(1000))

    def test_non_canonical_declets_alias(self):
        canonical = set(dpd.DIGITS_TO_DECLET)
        non_canonical = [declet for declet in range(1024) if declet not in canonical]
        assert len(non_canonical) == 24
        for declet in non_canonical:
            assert dpd.decode_declet(declet) in range(1000)

    def test_coefficient_field_roundtrip(self):
        value = 123456789012345
        field = dpd.encode_coefficient(value, 15)
        assert dpd.decode_coefficient(field, 15) == value

    def test_coefficient_field_rejects_overflow(self):
        with pytest.raises(DecimalError):
            dpd.encode_coefficient(10 ** 16, 15)
        with pytest.raises(DecimalError):
            dpd.encode_coefficient(1, 4)

    def test_lookup_tables_consistent(self):
        bcd_table = dpd.declet_table_bcd()
        reverse = dpd.bcd_to_declet_table()
        assert len(bcd_table) == 1024 and len(reverse) == 4096
        for value in range(0, 1000, 7):
            declet = dpd.encode_declet(value)
            packed = bcd_table[declet]
            assert reverse[packed] == declet

    @given(st.integers(0, 999))
    def test_encode_decode_property(self, value):
        assert dpd.decode_declet(dpd.encode_declet(value)) == value


# ---------------------------------------------------------------------------
# BCD helpers
# ---------------------------------------------------------------------------
class TestBcd:
    @given(st.integers(0, 10 ** 18))
    def test_roundtrip(self, value):
        assert bcd.bcd_to_int(bcd.int_to_bcd(value)) == value

    def test_invalid_nibble_rejected(self):
        with pytest.raises(DecimalError):
            bcd.bcd_to_int(0xA)
        assert not bcd.is_valid_bcd(0x1B)
        assert bcd.is_valid_bcd(0x1234567890)

    def test_digit_helpers(self):
        packed = bcd.int_to_bcd(907)
        assert bcd.bcd_digits(packed, 4) == (7, 0, 9, 0)
        assert bcd.digits_to_bcd((7, 0, 9)) == packed
        assert bcd.bcd_digit_count(packed) == 3
        assert bcd.bcd_digit_count(0) == 1

    def test_shifts(self):
        packed = bcd.int_to_bcd(45)
        assert bcd.bcd_to_int(bcd.bcd_shift_left(packed, 2)) == 4500
        assert bcd.bcd_to_int(bcd.bcd_shift_right(packed, 1)) == 4

    @given(st.integers(0, 10 ** 15), st.integers(0, 10 ** 15))
    def test_bcd_add_reference(self, a, b):
        result = bcd.bcd_add(bcd.int_to_bcd(a), bcd.int_to_bcd(b))
        assert bcd.bcd_to_int(result) == a + b


# ---------------------------------------------------------------------------
# DecNumber value type
# ---------------------------------------------------------------------------
class TestDecNumber:
    @pytest.mark.parametrize("text,sign,coeff,exp", [
        ("123", 0, 123, 0),
        ("-12.50", 1, 1250, -2),
        ("+0.001e5", 0, 1, 2),
        (".5", 0, 5, -1),
        ("7E-3", 0, 7, -3),
    ])
    def test_from_string_finite(self, text, sign, coeff, exp):
        number = DecNumber.from_string(text)
        assert (number.sign, number.coefficient, number.exponent) == (sign, coeff, exp)

    def test_from_string_specials(self):
        assert DecNumber.from_string("Infinity").is_infinite
        assert DecNumber.from_string("-inf").sign == 1
        assert DecNumber.from_string("NaN123").coefficient == 123
        assert DecNumber.from_string("sNaN").is_snan

    def test_from_string_rejects_garbage(self):
        with pytest.raises(DecimalError):
            DecNumber.from_string("twelve")

    def test_decimal_roundtrip(self):
        number = DecNumber(1, 123456, -3)
        assert DecNumber.from_decimal(number.to_decimal()) == number

    def test_predicates_and_adjusted(self):
        number = DecNumber(0, 12345, -2)
        assert number.digits == 5
        assert number.adjusted_exponent == 2
        assert DecNumber.zero().is_zero
        assert DecNumber.infinity(1).is_special

    def test_numeric_equality_vs_structural(self):
        a = DecNumber(0, 10, 0)
        b = DecNumber(0, 1, 1)
        assert a != b
        assert a.numerically_equal(b)
        assert not DecNumber.qnan().numerically_equal(DecNumber.qnan())

    def test_invalid_construction(self):
        with pytest.raises(DecimalError):
            DecNumber(2, 0, 0)
        with pytest.raises(DecimalError):
            DecNumber(0, -1, 0)
        with pytest.raises(DecimalError):
            DecNumber(0, 0, 0, "bogus")


# ---------------------------------------------------------------------------
# Context
# ---------------------------------------------------------------------------
class TestContext:
    def test_derived_exponents(self):
        ctx = DECIMAL64_CONTEXT()
        assert ctx.etiny == -398 and ctx.etop == 369

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Context(prec=0)
        with pytest.raises(ConfigurationError):
            Context(rounding="sideways")

    def test_flags_lifecycle(self):
        ctx = DECIMAL64_CONTEXT()
        multiply(DecNumber(0, 10 ** 16 - 1, 300), DecNumber(0, 10 ** 16 - 1, 300), ctx)
        assert "overflow" in ctx.flags.raised()
        ctx.flags.clear()
        assert ctx.flags.raised() == frozenset()

    def test_copy_gets_fresh_flags(self):
        ctx = DECIMAL64_CONTEXT()
        ctx.flags.inexact = True
        assert not ctx.copy().flags.inexact


# ---------------------------------------------------------------------------
# Arithmetic vs the Python decimal module (same specification)
# ---------------------------------------------------------------------------
def _random_operand(rng, exp_range=(-250, 250)):
    return DecNumber(
        rng.randint(0, 1),
        rng.randint(0, 10 ** 16 - 1),
        rng.randint(*exp_range),
    )


class TestArithmeticAgainstPythonDecimal:
    @pytest.mark.parametrize("rounding", [
        ROUND_HALF_EVEN, ROUND_HALF_UP, ROUND_DOWN, ROUND_UP,
        ROUND_CEILING, ROUND_FLOOR,
    ])
    def test_multiply_matches_python_decimal(self, rounding):
        rng = random.Random(hash(rounding) & 0xFFFF)
        ctx_proto = Context(prec=16, emax=384, emin=-383, rounding=rounding)
        pyctx = ctx_proto.to_python_context()
        for _ in range(300):
            x = _random_operand(rng)
            y = _random_operand(rng)
            ctx = ctx_proto.copy()
            ours = multiply(x, y, ctx)
            theirs = pyctx.multiply(x.to_decimal(), y.to_decimal())
            assert str(ours.to_decimal()) == str(theirs), (x, y, rounding)

    def test_subnormal_region_matches(self):
        rng = random.Random(99)
        pyctx = DECIMAL64_CONTEXT().to_python_context()
        for _ in range(400):
            x = _random_operand(rng, (-398, -150))
            y = _random_operand(rng, (-398, -150))
            ctx = DECIMAL64_CONTEXT()
            ours = multiply(x, y, ctx)
            theirs = pyctx.multiply(x.to_decimal(), y.to_decimal())
            assert str(ours.to_decimal()) == str(theirs)

    def test_add_and_subtract_match(self):
        rng = random.Random(7)
        pyctx = DECIMAL64_CONTEXT().to_python_context()
        for _ in range(300):
            x = _random_operand(rng)
            y = _random_operand(rng)
            assert str(add(x, y, DECIMAL64_CONTEXT()).to_decimal()) == str(
                pyctx.add(x.to_decimal(), y.to_decimal())
            )
            assert str(subtract(x, y, DECIMAL64_CONTEXT()).to_decimal()) == str(
                pyctx.subtract(x.to_decimal(), y.to_decimal())
            )

    @settings(max_examples=200, deadline=None)
    @given(
        st.integers(0, 1), st.integers(0, 10 ** 16 - 1), st.integers(-398, 369),
        st.integers(0, 1), st.integers(0, 10 ** 16 - 1), st.integers(-398, 369),
    )
    def test_multiply_property(self, xs, xc, xe, ys, yc, ye):
        x, y = DecNumber(xs, xc, xe), DecNumber(ys, yc, ye)
        ctx = DECIMAL64_CONTEXT()
        ours = multiply(x, y, ctx)
        theirs = DECIMAL64_CONTEXT().to_python_context().multiply(
            x.to_decimal(), y.to_decimal()
        )
        assert str(ours.to_decimal()) == str(theirs)


class TestAddSubFmaEdges:
    """Direct edge coverage for add/subtract/fma special paths.

    These cases were previously exercised only indirectly (through the
    kernel oracles); each one cross-checks against stdlib decimal with the
    same context settings.
    """

    def test_exact_cancellation_zero_sign_round_floor(self):
        x = DecNumber(0, 123456, -3)
        for rounding in (ROUND_FLOOR, ROUND_HALF_EVEN, ROUND_CEILING):
            ctx = Context(prec=16, emax=384, emin=-383, rounding=rounding)
            ours = subtract(x, x, ctx)
            theirs = ctx.to_python_context().subtract(
                x.to_decimal(), x.to_decimal()
            )
            assert str(ours.to_decimal()) == str(theirs), rounding
            # Only ROUND_FLOOR directs an exact-cancellation zero negative.
            assert (ours.sign == 1) == (rounding == ROUND_FLOOR)

    def test_both_zero_sum_sign(self):
        pos, neg = DecNumber.zero(0), DecNumber.zero(1)
        for rounding in (ROUND_FLOOR, ROUND_HALF_EVEN):
            for x, y in ((pos, neg), (neg, pos), (neg, neg), (pos, pos)):
                ctx = Context(prec=16, emax=384, emin=-383, rounding=rounding)
                ours = add(x, y, ctx)
                theirs = ctx.to_python_context().add(
                    x.to_decimal(), y.to_decimal()
                )
                assert str(ours.to_decimal()) == str(theirs), (x, y, rounding)

    def test_inf_minus_inf_invalid_qnan(self):
        ctx = DECIMAL64_CONTEXT()
        inf = DecNumber.infinity(0)
        result = subtract(inf, inf, ctx)
        assert result.kind == "qnan" and result.coefficient == 0
        assert ctx.flags.invalid
        pyctx = DECIMAL64_CONTEXT().to_python_context()
        theirs = pyctx.subtract(inf.to_decimal(), inf.to_decimal())
        assert str(result.to_decimal()) == str(theirs)
        assert pyctx.flags[decimal.InvalidOperation]
        # Same-sign infinities subtract to the invalid case through the
        # copy_negate path; opposite signs stay a clean infinity.
        ctx = DECIMAL64_CONTEXT()
        ok = subtract(inf, DecNumber.infinity(1), ctx)
        assert ok.is_infinite and ok.sign == 0 and not ctx.flags.invalid

    def test_nan_payload_through_subtract(self):
        # A quiet-NaN y must keep its payload AND its sign: subtract's
        # copy_negate shortcut may not flip the NaN before propagation.
        ctx = DECIMAL64_CONTEXT()
        nan = DecNumber.qnan(123, sign=1)
        x = DecNumber(0, 5, 0)
        result = subtract(x, nan, ctx)
        assert result.kind == "qnan"
        assert result.coefficient == 123 and result.sign == 1
        assert not ctx.flags.invalid
        pyctx = DECIMAL64_CONTEXT().to_python_context()
        theirs = pyctx.subtract(x.to_decimal(), nan.to_decimal())
        assert str(result.to_decimal()) == str(theirs)

    def test_snan_through_subtract_signals_and_quiets(self):
        ctx = DECIMAL64_CONTEXT()
        result = subtract(DecNumber.from_int(1), DecNumber.snan(77), ctx)
        assert result.kind == "qnan" and result.coefficient == 77
        assert ctx.flags.invalid

    def test_fma_inf_times_zero_invalid_before_z(self):
        # Inf * 0 raises invalid before z is examined, matching stdlib fma.
        ctx = DECIMAL64_CONTEXT()
        result = fma(DecNumber.infinity(0), DecNumber.zero(), DecNumber.snan(9), ctx)
        assert result.kind == "qnan" and result.coefficient == 0
        assert ctx.flags.invalid
        pyctx = DECIMAL64_CONTEXT().to_python_context()
        theirs = pyctx.fma(
            decimal.Decimal("Infinity"), decimal.Decimal(0), decimal.Decimal("sNaN9")
        )
        assert str(result.to_decimal()) == str(theirs)

    def test_fma_single_rounding(self):
        # 1 + ulp^2/... : the product must NOT be rounded before the add.
        ctx = DECIMAL64_CONTEXT()
        x = DecNumber(0, 10 ** 16 - 1, -16)   # just under 1
        ours = fma(x, x, DecNumber(1, 1, -32), ctx)
        pyctx = DECIMAL64_CONTEXT().to_python_context()
        theirs = pyctx.fma(
            x.to_decimal(), x.to_decimal(), decimal.Decimal("-1E-32")
        )
        assert str(ours.to_decimal()) == str(theirs)


class TestSpecialsAndMisc:
    def test_nan_propagation(self):
        ctx = DECIMAL64_CONTEXT()
        result = multiply(DecNumber.snan(5), DecNumber.from_int(2), ctx)
        assert result.kind == "qnan" and result.coefficient == 5
        assert ctx.flags.invalid

    def test_inf_times_zero_is_invalid(self):
        ctx = DECIMAL64_CONTEXT()
        result = multiply(DecNumber.infinity(), DecNumber.zero(), ctx)
        assert result.is_nan and ctx.flags.invalid

    def test_inf_plus_minus_inf_invalid(self):
        ctx = DECIMAL64_CONTEXT()
        assert add(DecNumber.infinity(0), DecNumber.infinity(1), ctx).is_nan

    def test_compare(self):
        ctx = DECIMAL64_CONTEXT()
        assert compare(DecNumber.from_int(2), DecNumber.from_int(3), ctx) == -1
        assert compare(DecNumber(0, 10, -1), DecNumber.from_int(1), ctx) == 0
        assert compare(DecNumber.infinity(1), DecNumber.from_int(0), ctx) == -1
        assert compare(DecNumber.qnan(), DecNumber.from_int(0), ctx) is None

    @pytest.mark.parametrize("x,y,expected", [
        # ±Inf vs ±Inf.
        (DecNumber.infinity(0), DecNumber.infinity(0), 0),
        (DecNumber.infinity(1), DecNumber.infinity(1), 0),
        (DecNumber.infinity(1), DecNumber.infinity(0), -1),
        (DecNumber.infinity(0), DecNumber.infinity(1), 1),
        # ±Inf vs finite: the infinity dominates regardless of magnitude.
        (DecNumber.infinity(0), DecNumber.from_int(10**15), 1),
        (DecNumber.infinity(1), DecNumber.from_int(-(10**15)), -1),
        (DecNumber.infinity(0), DecNumber.zero(), 1),
        (DecNumber.infinity(1), DecNumber.zero(), -1),
        # finite vs ±Inf (mirrored operand order).
        (DecNumber.from_int(10**15), DecNumber.infinity(0), -1),
        (DecNumber.from_int(-(10**15)), DecNumber.infinity(1), 1),
        (DecNumber.zero(1), DecNumber.infinity(0), -1),
        (DecNumber.zero(), DecNumber.infinity(1), 1),
    ])
    def test_compare_infinity_orderings(self, x, y, expected):
        ctx = DECIMAL64_CONTEXT()
        assert compare(x, y, ctx) == expected
        assert not ctx.flags.invalid  # infinities are ordered, not invalid

    def test_minus_and_absolute(self):
        ctx = DECIMAL64_CONTEXT()
        assert minus(DecNumber.from_int(5), ctx).sign == 1
        assert absolute(DecNumber.from_int(-5), ctx).sign == 0

    def test_round_coefficient_modes(self):
        assert round_coefficient(1251, 2, 0, ROUND_HALF_EVEN) == (13, True)
        assert round_coefficient(1250, 2, 0, ROUND_HALF_EVEN) == (12, True)
        assert round_coefficient(1350, 2, 0, ROUND_HALF_EVEN) == (14, True)
        assert round_coefficient(1250, 2, 0, ROUND_HALF_UP) == (13, True)
        assert round_coefficient(1999, 3, 1, ROUND_FLOOR) == (2, True)
        assert round_coefficient(1200, 2, 0, ROUND_DOWN) == (12, False)

    def test_finalize_clamp_flag(self):
        ctx = DECIMAL64_CONTEXT()
        result = finalize(0, 5, 380, ctx)
        assert ctx.flags.clamped
        assert result.exponent == ctx.etop


# ---------------------------------------------------------------------------
# Interchange formats
# ---------------------------------------------------------------------------
class TestFormats:
    @pytest.mark.parametrize("module,fmt", [(decimal64, DECIMAL64), (decimal128, DECIMAL128)])
    def test_roundtrip_random(self, module, fmt):
        rng = random.Random(fmt.precision)
        for _ in range(300):
            number = DecNumber(
                rng.randint(0, 1),
                rng.randint(0, fmt.max_coefficient),
                rng.randint(fmt.etiny, fmt.etop),
            )
            decoded = module.decode(module.encode(number))
            assert decoded == number or decoded.numerically_equal(number)

    def test_known_encoding_one(self):
        # 1 = +1E+0: biased exponent 398 -> 0b01 10001110, MSD 0, declets 0...01.
        word = decimal64.encode(DecNumber(0, 1, 0))
        assert decimal64.decode(word) == DecNumber(0, 1, 0)
        assert word >> 63 == 0

    def test_specials_roundtrip(self):
        for number in (
            DecNumber.infinity(0), DecNumber.infinity(1),
            DecNumber.qnan(42), DecNumber.snan(7, sign=1),
        ):
            decoded = decimal64.decode(decimal64.encode(number))
            assert decoded.kind == number.kind and decoded.sign == number.sign

    def test_components_and_bcd(self):
        word = decimal64.encode(DecNumber(1, 987654321, -5))
        sign, biased, coefficient = decimal64.components(word)
        assert (sign, coefficient) == (1, 987654321)
        assert biased == -5 + decimal64.BIAS
        assert decimal64.coefficient_bcd(word) == 0x987654321

    def test_components_rejects_specials(self):
        with pytest.raises(DecimalError):
            decimal64.components(decimal64.encode(DecNumber.infinity()))
        assert decimal64.is_special(decimal64.encode(DecNumber.qnan()))

    def test_rounding_on_encode_flags(self):
        ctx = decimal64.context()
        decimal64.encode(DecNumber(0, 10 ** 17 + 1, 0), ctx)
        assert ctx.flags.rounded and ctx.flags.inexact

    def test_decimal128_parameters(self):
        assert decimal128.PRECISION == 34
        assert decimal128.EMAX == 6144
        assert DECIMAL128.coefficient_continuation_bits == 110

    @settings(max_examples=150, deadline=None)
    @given(
        st.integers(0, 1),
        st.integers(0, 10 ** 16 - 1),
        st.integers(-398, 369),
    )
    def test_decimal64_roundtrip_property(self, sign, coefficient, exponent):
        number = DecNumber(sign, coefficient, exponent)
        assert decimal64.decode(decimal64.encode(number)).numerically_equal(number) or (
            coefficient == 0
        )

    def test_decode_matches_python_decimal_packing_independence(self):
        """Our encoding is self-consistent with our golden arithmetic."""
        rng = random.Random(3)
        pyctx = decimal.Context(prec=16, Emax=384, Emin=-383)
        for _ in range(100):
            number = DecNumber(rng.randint(0, 1), rng.randint(0, 10 ** 16 - 1),
                               rng.randint(-398, 369))
            decoded = decimal64.decode(decimal64.encode(number))
            assert decoded.to_decimal() == pyctx.plus(number.to_decimal())
