"""Campaign engine: shard-merge correctness, determinism, accounting fixes."""

import random

import pytest

from repro.core.campaign import (
    CampaignCell,
    plan_shards,
    run_campaign,
    run_table_iv_campaign,
    table_iv_cells,
)
from repro.core.evaluation import EvaluationFramework, run_solution_shard
from repro.core.pareto import ParetoAnalyzer
from repro.core.reporting import render_campaign, render_table_iv
from repro.core.results import ShardCycleReport, TableIVReport, merge_shard_reports
from repro.core.solution import standard_solutions
from repro.errors import ConfigurationError
from repro.testgen.config import SolutionKind
from repro.verification.coverage import CoverageTracker
from repro.verification.database import OperandClass, VerificationDatabase

SEED = 2018
SAMPLES = 200


@pytest.fixture(scope="module")
def framework():
    return EvaluationFramework(num_samples=SAMPLES, seed=SEED)


@pytest.fixture(scope="module")
def serial_table_iv(framework):
    return framework.evaluate_table_iv()


class TestShardPlan:
    def test_contiguous_and_balanced(self):
        plan = plan_shards(10, 3)
        assert plan == [(0, 4), (4, 7), (7, 10)]
        assert plan_shards(8000, 4) == [
            (0, 2000), (2000, 4000), (4000, 6000), (6000, 8000)
        ]

    def test_more_shards_than_samples(self):
        assert plan_shards(2, 5) == [(0, 1), (1, 2)]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            plan_shards(10, 0)


class TestShardMerge:
    @staticmethod
    def _shard(start, stop, **overrides):
        fields = dict(
            shard_index=start,
            start=start,
            stop=stop,
            raw_cycle_samples=list(range(start, stop)),
            hw_cycles=10 * (stop - start),
            sw_cycles=100,
            icache_accesses=50,
            icache_hits=40,
            dcache_accesses=20,
            dcache_hits=10,
            sim_wall_seconds=0.5,
            check_total=stop - start,
            verified=True,
        )
        fields.update(overrides)
        return ShardCycleReport(**fields)

    def test_merge_is_order_independent(self):
        shards = [self._shard(0, 3), self._shard(3, 7), self._shard(7, 9)]
        merged_forward = merge_shard_reports("s", "software", list(shards))
        random.Random(1).shuffle(shards)
        merged_shuffled = merge_shard_reports("s", "software", shards)
        assert merged_forward == merged_shuffled
        assert merged_forward.per_sample_cycles == [float(i) for i in range(9)]
        assert merged_forward.num_samples == 9
        assert merged_forward.num_shards == 3

    def test_merge_aggregates_cache_stats_and_wall_clock(self):
        merged = merge_shard_reports(
            "s", "software", [self._shard(0, 4), self._shard(4, 8)]
        )
        assert merged.icache_accesses == 100 and merged.icache_hits == 80
        assert merged.icache_hit_rate == 0.8
        assert merged.dcache_hit_rate == 0.5
        assert merged.sim_wall_seconds == 1.0
        assert merged.hw_cycles_total == 80
        assert merged.verification_passed

    def test_shuffled_mixed_cached_fresh_merge_identical(self):
        # The service invariant (docs/service.md): shard reports that have
        # round-tripped through the result cache's JSON store must merge
        # with fresh in-memory reports to a report that is field-for-field
        # identical regardless of arrival order.  Derived rates
        # (icache/dcache hit rates, per-sample cycles) are recomputed from
        # summed integers, so no merge-order dependence may survive.
        import dataclasses

        from repro.core.results import (
            shard_report_from_dict,
            shard_report_to_dict,
        )

        fresh = [self._shard(0, 3), self._shard(5, 9, shard_index=5)]
        cached = [
            shard_report_from_dict(shard_report_to_dict(shard))
            for shard in (self._shard(3, 5, shard_index=3),
                          self._shard(9, 11, shard_index=9))
        ]
        for shard, original in zip(
            cached, (self._shard(3, 5, shard_index=3),
                     self._shard(9, 11, shard_index=9))
        ):
            assert dataclasses.asdict(shard) == dataclasses.asdict(original)

        reference = merge_shard_reports("s", "software", fresh + cached)
        for seed in range(5):
            shards = fresh + cached
            random.Random(seed).shuffle(shards)
            merged = merge_shard_reports("s", "software", shards)
            assert dataclasses.asdict(merged) == dataclasses.asdict(reference)

    def test_merge_rejects_gaps(self):
        with pytest.raises(ConfigurationError):
            merge_shard_reports("s", "software", [self._shard(0, 3), self._shard(4, 6)])

    def test_merge_repetitions_true_division(self):
        merged = merge_shard_reports(
            "s", "software",
            [self._shard(0, 2, raw_cycle_samples=[7, 9], hw_cycles=5)],
            repetitions=2,
        )
        assert merged.per_sample_cycles == [3.5, 4.5]
        assert merged.hw_cycles_total == 2.5  # not floor-divided to 2


class TestCampaignEqualsSerial:
    """The acceptance property: workers=4 over the Table IV mix reproduces
    the serial ``evaluate_table_iv`` rows exactly (same seed, 1 shard/cell)."""

    @pytest.fixture(scope="class")
    def campaign_table_iv(self):
        return run_table_iv_campaign(
            num_samples=SAMPLES, seed=SEED, workers=4
        ).table_iv()

    def test_rows_identical(self, serial_table_iv, campaign_table_iv):
        assert serial_table_iv.rows() == campaign_table_iv.rows()
        assert serial_table_iv.speedups() == campaign_table_iv.speedups()

    def test_per_sample_cycles_identical(self, serial_table_iv, campaign_table_iv):
        for kind, serial in serial_table_iv.reports.items():
            merged = campaign_table_iv.reports[kind]
            assert serial.per_sample_cycles == merged.per_sample_cycles
            assert serial.hw_cycles_total == merged.hw_cycles_total
            assert serial.sw_cycles_total == merged.sw_cycles_total
            assert serial.icache_hit_rate == merged.icache_hit_rate
            assert serial.dcache_hit_rate == merged.dcache_hit_rate
            assert serial.rocc_commands == merged.rocc_commands
            assert serial.instructions_retired == merged.instructions_retired
            assert merged.sim_wall_seconds > 0

    def test_framework_workers_parameter(self, framework, serial_table_iv):
        parallel = framework.evaluate_table_iv(workers=2)
        assert parallel.rows() == serial_table_iv.rows()


class TestCampaignDeterminism:
    def test_worker_count_independence_with_sharding(self):
        kwargs = dict(num_samples=45, seed=11, shards_per_cell=3)
        serial = run_table_iv_campaign(workers=1, **kwargs)
        parallel = run_table_iv_campaign(workers=3, **kwargs)
        assert serial.total_shards == parallel.total_shards == 9
        for a, b in zip(serial.reports, parallel.reports):
            assert a.per_sample_cycles == b.per_sample_cycles
            assert a.hw_cycles_total == b.hw_cycles_total
            assert (a.icache_accesses, a.icache_hits) == (b.icache_accesses, b.icache_hits)
            assert (a.dcache_accesses, a.dcache_hits) == (b.dcache_accesses, b.dcache_hits)
            assert a.num_shards == b.num_shards == 3
            assert b.sim_wall_seconds > 0

    def test_shard_vectors_match_framework(self, framework):
        cell = table_iv_cells(num_samples=SAMPLES, seed=SEED)[0]
        assert cell.generate_vectors() == framework.vectors

    def test_render_campaign(self):
        result = run_table_iv_campaign(num_samples=10, seed=4, workers=1)
        text = render_campaign(result)
        assert "3 cells" in text and "workers" in text

    def test_campaign_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            run_campaign([])

    def test_sweep_style_campaign_rejects_table_iv(self):
        solution = standard_solutions()[SolutionKind.SOFTWARE]
        cells = [
            CampaignCell(solution=solution, num_samples=5, seed=1),
            CampaignCell(solution=solution, num_samples=5, seed=1),
        ]
        result = run_campaign(cells)
        with pytest.raises(ConfigurationError):
            result.table_iv()
        assert len(result.reports) == 2


class TestAccountingRegressions:
    def test_pareto_no_solution_restore_leak(self):
        framework = EvaluationFramework(num_samples=6, seed=3)
        temporary = framework.solutions.pop(SolutionKind.METHOD1_DUMMY)
        analyzer = ParetoAnalyzer(framework)
        analyzer.evaluate_solution(temporary)
        assert SolutionKind.METHOD1_DUMMY not in framework.solutions

    def test_pareto_restores_existing_solution(self):
        framework = EvaluationFramework(num_samples=6, seed=3)
        original = framework.solutions[SolutionKind.SOFTWARE]
        from dataclasses import replace

        analyzer = ParetoAnalyzer(framework)
        analyzer.evaluate_solution(replace(original, name="variant"))
        assert framework.solutions[SolutionKind.SOFTWARE] is original

    def test_pareto_sweep_through_campaign(self):
        framework = EvaluationFramework(num_samples=6, seed=3)
        analyzer = ParetoAnalyzer(framework)
        points = analyzer.evaluate_sweep(
            [framework.solutions[SolutionKind.SOFTWARE],
             framework.solutions[SolutionKind.METHOD1]],
        )
        assert len(points) == 2
        assert points[0].avg_cycles > points[1].avg_cycles  # software slower
        # The sweep never registers temporaries in the framework.
        assert set(framework.solutions) == set(standard_solutions())

    def test_repetitions_no_floor_drift(self):
        framework = EvaluationFramework(
            num_samples=8, seed=5, repetitions=3
        )
        run = framework.run_cycle_accurate(SolutionKind.METHOD1)
        report = run.cycle_report
        # hw total uses the same true division as the per-sample cycles …
        assert report.hw_cycles_total == run.timed_result.hw_cycles / 3
        # … so avg_sw + avg_hw recompose the measured average exactly.
        assert report.avg_sw_cycles + report.avg_hw_cycles == pytest.approx(
            report.avg_total_cycles
        )

    def test_table_iv_subset_without_baseline(self):
        framework = EvaluationFramework(num_samples=6, seed=3)
        report = framework.evaluate_table_iv(kinds=(SolutionKind.METHOD1,))
        assert report.speedups() == {SolutionKind.METHOD1: None}
        rows = report.rows()
        assert len(rows) == 1 and rows[0]["speedup"] is None
        assert "Method-1" in render_table_iv(report)
        with pytest.raises(ConfigurationError):
            report.speedups(strict=True)

    def test_table_iv_empty_report_speedups(self):
        report = TableIVReport(num_samples=0)
        assert report.speedups() == {}
        assert report.rows() == []


class TestCampaignCoverage:
    def test_eight_class_mix_covers_paper_conditions(self):
        """An 8-class campaign mix exercises every result condition the paper
        lists (overflow, underflow, normal/exact, rounding, clamping) plus
        the special-value conditions the tracker distinguishes."""
        vectors = VerificationDatabase(SEED).generate_mix(160, OperandClass.ALL)
        tracker = CoverageTracker()
        tracker.record_all(vectors)
        assert tracker.missing_conditions(CoverageTracker.CONDITIONS) == frozenset()
        assert set(tracker.class_counts) == set(OperandClass.ALL)

    def test_shard_runner_reports_verification(self):
        solution = standard_solutions()[SolutionKind.SOFTWARE]
        vectors = VerificationDatabase(9).generate_mix(5)
        outcome = run_solution_shard(solution, vectors, seed=9, start=20,
                                     shard_index=4)
        report = outcome.shard_report
        assert report.verified and report.check_total == 5
        assert report.check_failed == 0
        assert (report.start, report.stop) == (20, 25)
        assert len(report.raw_cycle_samples) == 5


class TestOperationDifferentialSmoke:
    """Mixed-op differential campaign: the ISSUE acceptance gate in-tree.

    Every operation runs its method-1 kernel and the software kernel in
    cross-model co-simulation with the dual oracle enabled; any divergence,
    oracle split or functional check failure fails the suite.
    """

    @pytest.fixture(scope="class")
    def mixed_op_result(self):
        from repro.core.campaign import run_operation_campaign

        return run_operation_campaign(
            ("multiply", "add", "fma"),
            formats=("decimal64",),
            num_samples=100,
            seed=SEED,
            differential=True,
        )

    def test_differential_clean(self, mixed_op_result):
        assert mixed_op_result.differential
        assert mixed_op_result.total_divergences == 0
        assert mixed_op_result.total_oracle_disagreements == 0
        assert mixed_op_result.total_check_failures == 0
        assert mixed_op_result.differential_clean

    def test_all_cells_present_and_sized(self, mixed_op_result):
        ops = {cell.op for cell in mixed_op_result.cells}
        assert ops == {"multiply", "add", "fma"}
        for report in mixed_op_result.reports:
            assert report.num_samples == 100

    def test_per_operation_tables(self, mixed_op_result):
        tables = mixed_op_result.table_iv_by_operation()
        assert {key[0] for key in tables} == {"multiply", "add", "fma"}
