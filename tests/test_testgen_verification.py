"""Tests for the test-program generator and the verification layer."""

import pytest

from repro.decnumber.number import DecNumber
from repro.errors import ConfigurationError
from repro.sim.spike import SpikeSimulator
from repro.testgen.config import SolutionKind, TestProgramConfig
from repro.testgen.generator import HARNESS_SYMBOLS, build_test_program
from repro.verification.checker import CheckReport, ResultChecker
from repro.verification.coverage import CoverageTracker
from repro.verification.database import OperandClass, VerificationDatabase, VerificationVector
from repro.verification.reference import GoldenReference


class TestConfig:
    def test_defaults_valid(self):
        config = TestProgramConfig()
        assert config.uses_accelerator
        assert config.precision == "double"

    @pytest.mark.parametrize("kwargs", [
        dict(solution="hardware_only"),
        dict(precision="single"),
        dict(operation="divide"),
        dict(num_samples=0),
        dict(repetitions=0),
        dict(output_mode="joules"),
        dict(operand_classes=("weird",)),
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TestProgramConfig(**kwargs)

    def test_quad_precision_is_first_class(self):
        config = TestProgramConfig(precision="quad")
        assert config.fmt == "decimal128"
        assert config.format_spec.precision == 34
        assert TestProgramConfig().fmt == "decimal64"
        assert TestProgramConfig.precision_for_format("decimal128") == "quad"

    def test_with_overrides(self):
        config = TestProgramConfig().with_overrides(num_samples=7)
        assert config.num_samples == 7


class TestDatabase:
    def test_deterministic_for_seed(self):
        first = VerificationDatabase(seed=11).generate_mix(20)
        second = VerificationDatabase(seed=11).generate_mix(20)
        assert [(v.x, v.y) for v in first] == [(v.x, v.y) for v in second]

    def test_seeds_differ(self):
        a = VerificationDatabase(seed=1).generate_mix(20)
        b = VerificationDatabase(seed=2).generate_mix(20)
        assert [(v.x, v.y) for v in a] != [(v.x, v.y) for v in b]

    def test_mix_cycles_through_classes(self):
        vectors = VerificationDatabase(seed=1).generate_mix(10)
        assert [v.operand_class for v in vectors[:5]] == list(OperandClass.TABLE_IV_MIX)

    @pytest.mark.parametrize("operand_class", OperandClass.ALL)
    def test_each_class_produces_vectors(self, operand_class):
        vectors = VerificationDatabase(seed=3).generate(operand_class, 25)
        assert len(vectors) == 25
        assert all(v.operand_class == operand_class for v in vectors)

    def test_class_semantics(self, golden):
        database = VerificationDatabase(seed=9)
        overflow_hits = sum(
            "overflow" in golden.compute(v.x, v.y).flags
            for v in database.generate(OperandClass.OVERFLOW, 40)
        )
        subnormal_hits = sum(
            bool({"subnormal", "underflow"} & golden.compute(v.x, v.y).flags)
            for v in database.generate(OperandClass.UNDERFLOW, 40)
        )
        clamped_hits = sum(
            "clamped" in golden.compute(v.x, v.y).flags
            for v in database.generate(OperandClass.CLAMPING, 40)
        )
        assert overflow_hits > 20
        assert subnormal_hits > 20
        assert clamped_hits > 20

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError):
            VerificationDatabase().generate("bogus", 1)
        with pytest.raises(ConfigurationError):
            VerificationDatabase().generate_mix(4, classes=("bogus",))


class TestGoldenReferenceAndChecker:
    def test_golden_multiply(self, golden):
        result = golden.compute(DecNumber.from_int(25), DecNumber.from_int(4))
        assert result.value == DecNumber(0, 100, 0)
        assert golden.decode(result.encoded) == result.value

    def test_golden_validation(self):
        with pytest.raises(ConfigurationError):
            GoldenReference(operation="divide")
        with pytest.raises(ConfigurationError):
            GoldenReference(precision="half")

    def test_quad_reference_available(self):
        quad = GoldenReference(precision="quad")
        result = quad.compute(DecNumber.from_int(10 ** 20), DecNumber.from_int(3))
        assert result.value.coefficient == 3 * 10 ** 20

    def test_checker_matches_and_mismatches(self, golden):
        checker = ResultChecker(golden)
        vectors = [
            VerificationVector(DecNumber.from_int(2), DecNumber.from_int(3), "normal", 0),
            VerificationVector(DecNumber.from_int(4), DecNumber.from_int(5), "normal", 1),
        ]
        good = golden.compute(vectors[0].x, vectors[0].y).encoded
        bad = golden.compute(DecNumber.from_int(9), DecNumber.from_int(9)).encoded
        report = checker.check_run(vectors, [good, bad])
        assert report.total == 2 and report.passed == 1 and report.failed == 1
        assert "sample 1" in report.failures[0].describe()
        with pytest.raises(Exception):
            report.raise_on_failure()

    def test_nan_results_match_any_nan(self):
        assert ResultChecker.results_match(DecNumber.qnan(1), DecNumber.qnan(999))
        assert not ResultChecker.results_match(DecNumber.qnan(), DecNumber.from_int(0))
        assert ResultChecker.results_match(DecNumber.infinity(1), DecNumber.infinity(1))
        assert not ResultChecker.results_match(DecNumber.infinity(0), DecNumber.infinity(1))

    def test_empty_report_is_not_a_pass(self):
        assert not CheckReport().all_passed


class TestCoverage:
    def test_conditions_recorded(self, golden):
        tracker = CoverageTracker(golden)
        database = VerificationDatabase(seed=6)
        tracker.record_all(database.generate_mix(40, OperandClass.ALL))
        covered = tracker.covered_conditions()
        assert {"inexact", "overflow", "result_infinity", "result_zero"} <= covered
        assert tracker.missing_conditions(["inexact"]) == frozenset()
        assert "vectors: 40" in tracker.summary()


class TestGeneratedPrograms:
    def test_program_symbols_and_operands(self):
        database = VerificationDatabase(seed=2)
        vectors = database.generate_mix(6)
        config = TestProgramConfig(solution=SolutionKind.SOFTWARE, num_samples=6)
        program = build_test_program(config, vectors=vectors)
        for symbol in HARNESS_SYMBOLS.values():
            assert symbol in program.image.symbols
        # The operand words in the image match the golden encodings.
        reference = GoldenReference()
        simulator = SpikeSimulator(program.image)
        operands_address = program.image.symbol("operands")
        for index, vector in enumerate(vectors):
            x_word = simulator.memory.read_dword(operands_address + 16 * index)
            assert x_word == reference.encode_operand(vector.x)

    def test_vector_count_mismatch_rejected(self):
        database = VerificationDatabase(seed=2)
        vectors = database.generate_mix(3)
        config = TestProgramConfig(solution=SolutionKind.SOFTWARE, num_samples=5)
        with pytest.raises(ConfigurationError):
            build_test_program(config, vectors=vectors)

    def test_repetitions_scale_cycle_counts(self):
        database = VerificationDatabase(seed=8)
        vectors = database.generate_mix(5)
        single = build_test_program(
            TestProgramConfig(solution=SolutionKind.SOFTWARE, num_samples=5,
                              repetitions=1),
            vectors=vectors,
        )
        triple = build_test_program(
            TestProgramConfig(solution=SolutionKind.SOFTWARE, num_samples=5,
                              repetitions=3),
            vectors=vectors,
        )
        result_single = SpikeSimulator(single.image).run()
        result_triple = SpikeSimulator(triple.image).run()
        assert result_triple.instructions_retired > 2.5 * result_single.instructions_retired
        # Results are still correct with repetitions (same final value stored).
        checker = ResultChecker(GoldenReference())
        assert checker.check_run(vectors, triple.read_results(result_triple)).all_passed
