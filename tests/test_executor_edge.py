"""Direct unit tests for the threaded-code :class:`~repro.sim.executor.Executor`.

These drive the executor against hand-encoded instruction words, without the
assembler/linker/HTIF stack, covering RV64IM semantics that the kernel runs
only exercise indirectly: shift-amount masking, signed division overflow and
divide-by-zero results, load sign extension — plus behaviours specific to the
threaded-code engine (batched ``run``, per-PC ``ExecInfo`` reuse, and
self-modifying-code invalidation).
"""

from __future__ import annotations

import pytest

from repro.errors import TrapError
from repro.isa.encoder import encode_instruction
from repro.sim.executor import Executor, TC_BRANCH, TC_JUMP, TC_MEM
from repro.sim.hart import Hart
from repro.sim.memory import SparseMemory

MASK64 = 0xFFFFFFFFFFFFFFFF
BASE = 0x1000
INT64_MIN = 1 << 63          # two's-complement pattern of -2**63
INT32_MIN = 0xFFFFFFFF80000000  # sign-extended -2**31


def make_executor(words, regs=None):
    """Place encoded words at ``BASE`` and return a ready executor."""
    memory = SparseMemory()
    for index, word in enumerate(words):
        memory.write(BASE + 4 * index, 4, word)
    hart = Hart(pc=BASE)
    if regs:
        for reg, value in regs.items():
            hart.regs[reg] = value & MASK64
    return Executor(hart, memory), hart, memory


def exec_rr(mnemonic, a, b):
    """x5 = a; x6 = b; x7 = mnemonic(x5, x6); return x7."""
    executor, hart, _ = make_executor(
        [encode_instruction(mnemonic, 7, 5, 6)], regs={5: a, 6: b}
    )
    executor.step()
    return hart.regs[7]


class TestShiftAmountMasking:
    @pytest.mark.parametrize("mnemonic,value,shamt,expected", [
        # 64-bit shifts use only rs2[5:0]: 0x43 & 0x3F == 3.
        ("sll", 1, 0x43, 8),
        ("srl", 0x80, 0x43, 0x10),
        ("sra", INT64_MIN, 0x43, 0xF000000000000000),
        # 0x40 & 0x3F == 0: shifting by 64 is a no-op, not zero.
        ("sll", 0xABCD, 0x40, 0xABCD),
        ("srl", 0xABCD, 0x40, 0xABCD),
        # 32-bit shifts use only rs2[4:0]: 0x23 & 0x1F == 3.
        ("sllw", 1, 0x23, 8),
        ("srlw", 0x80000000, 0x23, 0x10000000),
        ("sraw", 0x80000000, 0x23, 0xFFFFFFFFF0000000),
        # Shifting by 32 on the word ops is a no-op (sign-extended).
        ("sllw", 5, 0x20, 5),
    ])
    def test_register_shift_masks_amount(self, mnemonic, value, shamt, expected):
        assert exec_rr(mnemonic, value, shamt) == expected


class TestDivRemEdges:
    @pytest.mark.parametrize("mnemonic,a,b,expected", [
        # Signed overflow: INT_MIN / -1 wraps to INT_MIN, remainder 0.
        ("div", INT64_MIN, MASK64, INT64_MIN),
        ("rem", INT64_MIN, MASK64, 0),
        ("divw", INT32_MIN, MASK64, INT32_MIN),
        ("remw", INT32_MIN, MASK64, 0),
        # Division by zero: quotient all-ones, remainder is the dividend.
        ("div", 123, 0, MASK64),
        ("rem", 123, 0, 123),
        ("div", (-123) & MASK64, 0, MASK64),
        ("rem", (-123) & MASK64, 0, (-123) & MASK64),
        ("divu", 123, 0, MASK64),
        ("remu", 123, 0, 123),
        ("divw", 77, 0, MASK64),
        ("remw", (-77) & MASK64, 0, (-77) & MASK64),
        ("divuw", 77, 0, MASK64),
        ("remuw", 0x80000001, 0, INT32_MIN | 1),
        # C-style truncation toward zero for mixed signs.
        ("div", (-7) & MASK64, 2, (-3) & MASK64),
        ("rem", (-7) & MASK64, 2, (-1) & MASK64),
        ("div", 7, (-2) & MASK64, (-3) & MASK64),
        ("rem", 7, (-2) & MASK64, 1),
        # Large-magnitude operands must divide exactly (no float rounding).
        ("div", (1 << 62) + 3, 3, ((1 << 62) + 3) // 3),
        ("rem", (1 << 62) + 4, 3, ((1 << 62) + 4) % 3),
        ("div", ((-(1 << 62)) - 3) & MASK64, 3, (-(((1 << 62) + 3) // 3)) & MASK64),
        # Word ops ignore the upper 32 bits of both operands.
        ("divw", (0xDEAD << 32) | 10, (0xBEEF << 32) | 3, 3),
        ("remw", (0xDEAD << 32) | 10, (0xBEEF << 32) | 3, 1),
        ("divuw", (1 << 35) | 0x80000000, 2, 0x40000000),
    ])
    def test_div_rem(self, mnemonic, a, b, expected):
        assert exec_rr(mnemonic, a, b) == expected


class TestLoadExtension:
    @pytest.mark.parametrize("mnemonic,stored,expected", [
        ("lb", 0x80, 0xFFFFFFFFFFFFFF80),
        ("lb", 0x7F, 0x7F),
        ("lbu", 0xFF, 0xFF),
        ("lh", 0x8000, 0xFFFFFFFFFFFF8000),
        ("lh", 0x7FFF, 0x7FFF),
        ("lhu", 0xFFFF, 0xFFFF),
        ("lw", 0x80000000, 0xFFFFFFFF80000000),
        ("lw", 0x7FFFFFFF, 0x7FFFFFFF),
        ("lwu", 0xFFFFFFFF, 0xFFFFFFFF),
        ("ld", 0x8000000000000001, 0x8000000000000001),
    ])
    def test_load_sign_extension(self, mnemonic, stored, expected):
        data = 0x9000
        executor, hart, memory = make_executor(
            [encode_instruction(mnemonic, 7, 5, 0)], regs={5: data}
        )
        memory.write(data, 8, stored)
        executor.step()
        assert hart.regs[7] == expected

    def test_load_to_x0_is_discarded_but_accessed(self):
        seen = []
        executor, hart, memory = make_executor(
            [encode_instruction("ld", 0, 5, 0)], regs={5: 0x9000}
        )
        memory.add_read_hook(0x9000, lambda size: seen.append(size) or 99)
        executor.step()
        assert hart.regs[0] == 0
        assert seen == [8]  # the access still happened (MMIO semantics)


class TestX0Invariant:
    def test_alu_write_to_x0_discarded(self):
        executor, hart, _ = make_executor(
            [encode_instruction("addi", 0, 0, 55)]
        )
        executor.step()
        assert hart.regs[0] == 0
        assert hart.pc == BASE + 4


class TestRunBatching:
    def _counting_loop(self, iterations):
        # x5 counts down; bne back to itself.
        return [
            encode_instruction("addi", 5, 5, -1),
            encode_instruction("bne", 5, 0, -4),
            encode_instruction("addi", 6, 0, 1),
        ], {5: iterations}

    def test_run_counts_instructions(self):
        from repro.errors import DecodingError

        words, regs = self._counting_loop(10)
        executor, hart, _ = make_executor(words, regs=regs)
        # The loop retires 2 * 10 instructions plus the trailing addi, then
        # control reaches an undecodable zero word, which must raise exactly
        # as the old fetch-every-step interpreter did — with the 21 real
        # instructions already retired and architecturally applied.
        with pytest.raises(DecodingError):
            executor.run(1_000_000)
        assert executor.retired == 21
        assert hart.regs[6] == 1
        assert hart.pc == BASE + 12  # left at the faulting word

    def test_run_respects_budget_with_overshoot_bound(self):
        words, regs = self._counting_loop(10_000)
        executor, _, _ = make_executor(words, regs=regs)
        retired = executor.run(100)
        assert 100 <= retired <= 100 + Executor._MAX_BLOCK

    def test_run_and_step_agree(self):
        words, regs = self._counting_loop(7)
        executor_a, hart_a, _ = make_executor(words, regs=regs)
        executor_b, hart_b, _ = make_executor(words, regs=regs)
        executor_a.run(14)
        for _ in range(14):
            executor_b.step()
        assert hart_a.regs == hart_b.regs
        assert hart_a.pc == hart_b.pc
        assert executor_a.retired == executor_b.retired == 14


class TestSelfModifyingCode:
    def test_store_into_compiled_code_takes_effect(self):
        # x7 = 1; overwrite the *next* instruction (addi x7,x0,2) with
        # addi x7,x0,3 before it executes a second time.
        patch = encode_instruction("addi", 7, 0, 3)
        words = [
            encode_instruction("addi", 7, 0, 2),   # BASE: will be patched
            encode_instruction("sw", 6, 5, 0),     # BASE+4: patch BASE
            encode_instruction("jal", 0, -8),      # BASE+8: loop back
        ]
        executor, hart, _ = make_executor(words, regs={5: BASE, 6: patch})
        for _ in range(3):   # addi(2), sw, jal — all compiled once
            executor.step()
        assert hart.regs[7] == 2
        for _ in range(1):
            executor.step()  # re-executes BASE: must see the patched word
        assert hart.regs[7] == 3

    def test_store_into_code_mid_block_under_run(self):
        patch = encode_instruction("addi", 7, 0, 3)
        words = [
            encode_instruction("addi", 7, 0, 2),
            encode_instruction("sw", 6, 5, 0),
            encode_instruction("jal", 0, -8),
        ]
        executor, hart, _ = make_executor(words, regs={5: BASE, 6: patch})
        executor.run(6)  # two trips around the loop
        assert hart.regs[7] == 3

    def test_store_straddling_start_of_code_range_invalidates(self):
        # An 8-byte store at BASE-4 overlaps only the *first* compiled
        # instruction with its upper half; the overlap (not just the start
        # address) must trigger invalidation.
        patch = encode_instruction("addi", 7, 0, 3)
        words = [
            encode_instruction("addi", 7, 0, 2),   # BASE: patched via overlap
            encode_instruction("sd", 6, 5, -4),    # BASE+4: store to BASE-4
            encode_instruction("jal", 0, -8),      # BASE+8: loop back
        ]
        # Upper dword half = patched instruction, lower half lands below code.
        value = (patch << 32) | 0x0000_0013        # low word: nop encoding
        executor, hart, memory = make_executor(words, regs={5: BASE, 6: value})
        executor.run(6)  # two trips: second iteration must see the patch
        assert memory.read(BASE, 4) == patch
        assert hart.regs[7] == 3


class TestExecInfoProtocol:
    def test_load_info_fields(self):
        executor, _, memory = make_executor(
            [encode_instruction("lw", 7, 5, 4)], regs={5: 0x9000}
        )
        memory.write(0x9004, 4, 42)
        info = executor.step()
        assert info.mem_addr == 0x9004
        assert info.mem_size == 4
        assert not info.mem_is_store
        assert info.timing_class == TC_MEM

    def test_store_info_fields(self):
        executor, _, _ = make_executor(
            [encode_instruction("sd", 6, 5, 8)], regs={5: 0x9000, 6: 7}
        )
        info = executor.step()
        assert info.mem_addr == 0x9008
        assert info.mem_size == 8
        assert info.mem_is_store

    def test_branch_info_reused_across_outcomes(self):
        # beq taken once, then not taken: the per-PC ExecInfo is reused and
        # must be rewritten on every execution.
        words = [
            encode_instruction("beq", 5, 6, 8),    # BASE -> BASE+8 when x5==x6
            encode_instruction("addi", 0, 0, 0),
            encode_instruction("jal", 0, -8),      # BASE+8 -> BASE
        ]
        executor, hart, _ = make_executor(words, regs={5: 1, 6: 1})
        info = executor.step()
        assert info.branch_taken and info.next_pc == BASE + 8
        assert info.timing_class == TC_BRANCH
        jal_info = executor.step()
        assert jal_info.timing_class == TC_JUMP and jal_info.branch_taken
        hart.regs[6] = 2
        info = executor.step()
        assert not info.branch_taken and info.next_pc == BASE + 4

    def test_ebreak_traps_with_pc(self):
        executor, _, _ = make_executor([encode_instruction("ebreak")])
        with pytest.raises(TrapError, match=hex(BASE)):
            executor.step()
        assert executor.retired == 0
