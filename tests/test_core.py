"""Tests for the evaluation framework, host models, Pareto analysis, reporting."""

import pytest

from repro.core.evaluation import EvaluationFramework
from repro.core.host_eval import HostEvaluator
from repro.core.method1 import DummyHardware, FunctionalHardware, Method1HostModel
from repro.core.pareto import ParetoAnalyzer, ParetoPoint
from repro.core.reporting import (
    render_pareto,
    render_table_ii,
    render_table_iii,
    render_table_iv,
    render_table_v,
    render_table_vi,
)
from repro.core.results import SolutionCycleReport
from repro.core.software_baseline import SoftwareBaseline
from repro.core.solution import standard_solutions
from repro.decnumber import decimal64
from repro.decnumber.number import DecNumber
from repro.rocc.decimal_accel import DecimalAcceleratorConfig
from repro.testgen.config import SolutionKind
from repro.verification.database import VerificationDatabase
from repro.verification.reference import GoldenReference


@pytest.fixture(scope="module")
def small_framework():
    """A framework instance small enough for unit tests (shared per module)."""
    return EvaluationFramework(num_samples=15, seed=77)


@pytest.fixture(scope="module")
def table_iv(small_framework):
    return small_framework.evaluate_table_iv()


class TestHostModels:
    def test_method1_functional_matches_golden(self, golden):
        model = Method1HostModel(hardware=FunctionalHardware())
        database = VerificationDatabase(seed=21)
        for vector in database.generate_mix(120, classes=(
            "normal", "rounding", "overflow", "underflow", "clamping", "special",
            "zero", "exact",
        )):
            expected = golden.compute(vector.x, vector.y).value
            actual = model.multiply(vector.x, vector.y)
            if expected.is_nan:
                assert actual.is_nan
            else:
                assert actual == expected, (vector.x, vector.y)

    def test_method1_word_interface(self):
        model = Method1HostModel()
        x = decimal64.encode(DecNumber.from_int(25))
        y = decimal64.encode(DecNumber.from_int(4))
        assert decimal64.decode(model.multiply_words(x, y)) == DecNumber(0, 100, 0)

    def test_dummy_hardware_gives_wrong_but_finite_results(self):
        model = Method1HostModel(hardware=DummyHardware())
        result = model.multiply(DecNumber.from_int(1234567), DecNumber.from_int(89))
        assert result.is_finite
        assert result.coefficient != 1234567 * 89
        assert model.hardware.operations > 20

    def test_software_baseline_matches_golden(self, golden):
        baseline = SoftwareBaseline()
        database = VerificationDatabase(seed=22)
        for vector in database.generate_mix(80):
            expected = golden.compute(vector.x, vector.y)
            assert baseline.multiply_words(
                golden.encode_operand(vector.x), golden.encode_operand(vector.y)
            ) == expected.encoded


class TestSolutions:
    def test_standard_solutions(self):
        solutions = standard_solutions()
        assert set(solutions) == {
            SolutionKind.SOFTWARE, SolutionKind.METHOD1, SolutionKind.METHOD1_DUMMY
        }
        assert solutions[SolutionKind.METHOD1].make_accelerator() is not None
        assert solutions[SolutionKind.SOFTWARE].make_accelerator() is None
        assert solutions[SolutionKind.SOFTWARE].hardware_overhead() is None
        overhead = solutions[SolutionKind.METHOD1].hardware_overhead()
        assert overhead.total_gate_equivalents > 0


class TestEvaluationFramework:
    def test_functional_runs_verify(self, small_framework):
        run = small_framework.run_functional(SolutionKind.METHOD1)
        assert run.check_report.all_passed

    def test_table_iv_shape(self, table_iv):
        """The paper's qualitative result: the co-design solution is fastest,
        the dummy estimate is slower than the real accelerator but still
        faster than software, and the hardware part is a small fraction."""
        speedups = table_iv.speedups()
        assert speedups[SolutionKind.METHOD1] > 1.5
        assert speedups[SolutionKind.METHOD1_DUMMY] > 1.0
        assert speedups[SolutionKind.METHOD1] > speedups[SolutionKind.METHOD1_DUMMY]
        method1 = table_iv.reports[SolutionKind.METHOD1]
        software = table_iv.reports[SolutionKind.SOFTWARE]
        assert method1.avg_hw_cycles > 0
        assert method1.avg_hw_cycles < method1.avg_sw_cycles
        assert software.avg_hw_cycles == 0
        rows = table_iv.rows()
        assert len(rows) == 3 and rows[0]["speedup"] is not None

    def test_table_iv_verification_gate(self, table_iv):
        for report in table_iv.reports.values():
            assert report.verification_passed

    def test_table_vi_shape(self, small_framework):
        report = small_framework.evaluate_table_vi()
        assert report.speedup(SolutionKind.METHOD1_DUMMY) > 1.0
        assert report.instructions[SolutionKind.SOFTWARE] > 0

    def test_table_v_shape(self):
        evaluator = HostEvaluator(num_samples=150, seed=5)
        report = evaluator.evaluate()
        assert report.rows[SolutionKind.SOFTWARE].seconds > 0
        assert report.speedup(SolutionKind.METHOD1_DUMMY) > 0.5

    def test_hardware_overhead_report(self, small_framework):
        report = small_framework.hardware_overhead()
        assert report.total_gate_equivalents > 1000


class TestResultsAndPareto:
    def test_cycle_report_statistics(self):
        report = SolutionCycleReport(
            solution_name="x", solution_kind="software", num_samples=4,
            per_sample_cycles=[100, 110, 90, 100], hw_cycles_total=40,
        )
        assert report.avg_total_cycles == 100
        assert report.avg_hw_cycles == 10
        assert report.avg_sw_cycles == 90
        assert report.stdev_cycles > 0
        baseline = SolutionCycleReport(
            solution_name="b", solution_kind="software", num_samples=4,
            per_sample_cycles=[200, 200, 200, 200],
        )
        assert report.speedup_over(baseline) == 2.0

    def test_pareto_dominance(self):
        fast_small = ParetoPoint("a", avg_cycles=100, gate_equivalents=10)
        slow_big = ParetoPoint("b", avg_cycles=200, gate_equivalents=20)
        slow_small = ParetoPoint("c", avg_cycles=200, gate_equivalents=5)
        assert fast_small.dominates(slow_big)
        assert not fast_small.dominates(slow_small)
        assert not slow_small.dominates(fast_small)

    def test_pareto_analyzer_standard_points(self):
        framework = EvaluationFramework(num_samples=6, seed=3)
        analyzer = ParetoAnalyzer(framework)
        points = analyzer.evaluate_standard_points()
        assert len(points) == 2
        frontier = analyzer.frontier()
        # Software (0 gates, slow) and Method-1 (gates, fast) are both Pareto points.
        assert len(frontier) == 2

    def test_pareto_with_custom_accelerator_config(self):
        framework = EvaluationFramework(num_samples=6, seed=3)
        analyzer = ParetoAnalyzer(framework)
        base = framework.solutions[SolutionKind.METHOD1]
        from dataclasses import replace

        wide = replace(
            base,
            name="Method-1 (wide adder)",
            accelerator_config=DecimalAcceleratorConfig(adder_width_digits=32),
        )
        point = analyzer.evaluate_solution(wide)
        assert point.gate_equivalents > 0


class TestReporting:
    def test_table_ii_lists_all_functions(self):
        text = render_table_ii()
        for name in ("WR", "RD", "DEC_ADD", "DEC_ACCUM", "DEC_MUL", "CLR_ALL"):
            assert name in text

    def test_table_iii_contains_opcode_column(self):
        text = render_table_iii()
        assert "0001011" in text  # the custom-0 opcode
        assert "DEC_ADD" in text

    def test_render_table_iv(self, table_iv):
        text = render_table_iv(table_iv)
        assert "Method-1 [9]" in text and "Software [2]" in text
        assert "(paper)" in text
        assert "x" in text  # a speedup value

    def test_render_table_v_and_vi(self, small_framework):
        text_v = render_table_v(HostEvaluator(num_samples=40).evaluate())
        assert "Intel i7" in text_v
        text_vi = render_table_vi(small_framework.evaluate_table_vi())
        assert "AtomicSimpleCPU" in text_vi

    def test_render_pareto(self):
        points = [
            ParetoPoint("soft", 2000, 0.0),
            ParetoPoint("m1", 700, 12000.0),
            ParetoPoint("bad", 2500, 20000.0),
        ]
        text = render_pareto(points)
        assert "yes" in text and "no" in text
