"""Smoke tests keeping the example applications runnable.

Each example is executed in-process with a small workload; the assertions
check the observable outcomes (correct arithmetic, sensible capacity numbers,
a non-empty Pareto frontier) rather than exact text.
"""

import runpy
import sys

import pytest


@pytest.fixture
def argv(monkeypatch):
    def set_args(*args):
        monkeypatch.setattr(sys, "argv", ["example", *map(str, args)])

    return set_args


def _run(path):
    return runpy.run_path(path, run_name="__main__")


def test_quickstart_example(argv, capsys):
    argv(12)
    _run("examples/quickstart.py")
    output = capsys.readouterr().out
    assert "Table IV" in output
    assert "faster than the software baseline" in output
    assert "TOTAL" in output  # hardware overhead table


def test_financial_billing_example(argv, capsys):
    argv(20)
    _run("examples/financial_billing.py")
    output = capsys.readouterr().out
    assert "Rated 20 call records" in output
    assert "records/s" in output
    # The accelerated solution must rate more records per second.
    lines = [line for line in output.splitlines() if "records/s" in line]
    software_rate = float(lines[0].split("->")[1].split("M")[0])
    method1_rate = float(lines[1].split("->")[1].split("M")[0])
    assert method1_rate > software_rate


def test_pareto_sweep_example(argv, capsys):
    argv(8)
    _run("examples/pareto_sweep.py")
    output = capsys.readouterr().out
    assert "Pareto frontier" in output
    assert "Software [2]" in output
    assert "yes" in output


def test_campaign_scale_example(argv, capsys):
    argv(15, 2)
    _run("examples/campaign_scale.py")
    output = capsys.readouterr().out
    assert "Table IV" in output
    assert "Campaign: 3 cells" in output
    assert "serial evaluate_table_iv rows identical: True" in output


def test_workload_tour_example(argv, capsys):
    argv(10, 1)
    _run("examples/workload_tour.py")
    output = capsys.readouterr().out
    assert "Workload: paper-uniform" in output
    assert "Workload: telco-billing" in output
    assert "Workload: carry-stress" in output
    assert "Cross-workload comparison" in output
    assert "Campaign: 6 cells" in output


def test_custom_instruction_example(capsys):
    _run("examples/custom_instruction.py")
    output = capsys.readouterr().out
    assert "expected 1111111110" in output and "= 1111111110" in output
    assert "DEC_CNVx2" in output
    assert "RoCC commands" in output
