"""Cycle-identity tests for the compiled timing tier (``repro.rocket.timing``).

The Rocket emulator's compiled timing spans must be *bit-invisible*: with the
tier on, every architectural register, the pc, the retired-instruction count,
the cycle total, both caches' hit/miss statistics and the RoCC command count
must equal the interpreted (``timing_tier=False``) model's — on every program,
under every configuration, including mid-run instruction-limit exhaustion and
self-modifying-code deoptimisation.  These tests run the two models over the
same image and compare everything.

Also covered here: the executor-level warm-start knobs that ride along with
the tier (``Executor.preheat`` seeding promotion from a prior profile, and
``BatchRunner.acquire_timed`` reusing a warm timing compiler across runs),
both pinned bit-identical to their cold/organic counterparts.
"""

import pytest

from repro.asm.builder import AsmBuilder
from repro.asm.program import TOHOST_ADDRESS
from repro.core.solution import standard_solutions
from repro.errors import SimulationError
from repro.rocket.config import CacheConfig, RocketConfig
from repro.rocket.core import RocketEmulator
from repro.sim.batch import BatchRunner
from repro.sim.spike import SpikeSimulator
from repro.testgen.config import SolutionKind, TestProgramConfig
from repro.testgen.generator import build_test_program
from tests.test_pipeline_accel import _accelerator, _all_funct_program

#: Small cache geometry that forces evictions (and therefore consults the
#: replacement PRNG) even on tiny programs.
_TINY_CACHES = dict(
    icache=CacheConfig(sets=4, ways=2, line_bytes=16, miss_penalty_cycles=7),
    dcache=CacheConfig(sets=4, ways=2, line_bytes=16, miss_penalty_cycles=9),
)


def _run_pair(image, make_accel=None, config=None, limit=None):
    """Run timing-tier and interpreted emulators; return both (+ errors)."""
    out = []
    for timing in (True, False):
        emulator = RocketEmulator(
            image,
            accelerator=make_accel() if make_accel is not None else None,
            config=config if config is not None else RocketConfig(),
            timing_tier=timing,
        )
        if limit is not None:
            emulator.max_instructions = limit
        try:
            emulator.run()
            error = None
        except SimulationError as raised:
            error = raised
        out.append((emulator, error))
    return out


def _assert_identical(image, make_accel=None, config=None, limit=None):
    (fast, fast_err), (slow, slow_err) = _run_pair(
        image, make_accel=make_accel, config=config, limit=limit
    )
    assert (fast_err is None) == (slow_err is None)
    assert fast.hart.pc == slow.hart.pc
    assert fast.hart.regs == slow.hart.regs
    assert fast.instructions_retired == slow.instructions_retired
    assert fast.cycle == slow.cycle
    assert fast.sw_cycles == slow.sw_cycles
    assert fast.hw_cycles == slow.hw_cycles
    assert fast.rocc_commands == slow.rocc_commands
    for cache in ("icache", "dcache"):
        fstats = getattr(fast, cache).stats
        sstats = getattr(slow, cache).stats
        assert (fstats.accesses, fstats.hits, fstats.misses) == (
            sstats.accesses, sstats.hits, sstats.misses
        ), cache
    assert {
        page: bytes(data) for page, data in fast.memory._pages.items()
    } == {
        page: bytes(data) for page, data in slow.memory._pages.items()
    }
    # The interpreted model never compiles; the fast model accounts every
    # retired instruction to exactly one of its two tiers.
    assert slow.timing_spans == 0
    assert (
        fast.timing_compiled_instructions + fast.timing_interpreted_instructions
        == fast.instructions_retired
    )
    return fast, slow


def _exit_sequence(builder):
    builder.li("t5", TOHOST_ADDRESS)
    builder.li("t6", 1)
    builder.emit("sd", "t6", "t5", 0)
    builder.label("spin")
    builder.j("spin")


def _rv64im_edges_program(iterations=120):
    """A hot loop over RV64IM edge cases: div/rem by zero, INT64_MIN / -1,
    signed/unsigned 32-bit narrowing, every load/store width, taken and
    untaken branches, jal/jalr — enough arrivals that the loop body and its
    continuations all earn compiled timing spans.
    """
    builder = AsmBuilder()
    builder.data()
    builder.label("buf")
    builder.dword(0, 0, 0, 0, 0, 0, 0, 0)
    builder.text()
    builder.label("_start")
    builder.la("s0", "buf")
    builder.li("s1", 0)                      # loop counter
    builder.li("s2", iterations)
    builder.li("s3", 0)                      # checksum
    builder.label("loop")
    # Divider edges: x / 0, INT64_MIN / -1, and a plain pair.
    builder.li("t0", -(1 << 63))
    builder.li("t1", -1)
    builder.emit("div", "t2", "t0", "t1")    # overflow case -> INT64_MIN
    builder.emit("rem", "t3", "t0", "t1")    # -> 0
    builder.emit("add", "s3", "s3", "t2")
    builder.li("t1", 0)
    builder.emit("divu", "t2", "s1", "t1")   # /0 -> all ones
    builder.emit("remu", "t3", "s1", "t1")   # /0 -> dividend
    builder.emit("add", "s3", "s3", "t3")
    # 32-bit narrowing and multiplier forms.
    builder.emit("mul", "t2", "s1", "s3")
    builder.emit("mulhu", "t3", "s3", "s3")
    builder.emit("divw", "t4", "s3", "s2")
    builder.emit("remw", "t5", "s3", "s2")
    builder.emit("addw", "s3", "t4", "t5")
    builder.emit("add", "s3", "s3", "t2")
    builder.emit("add", "s3", "s3", "t3")
    # Every store width, then load them back (signed and unsigned).
    builder.emit("sd", "s3", "s0", 0)
    builder.emit("sw", "s3", "s0", 8)
    builder.emit("sh", "s3", "s0", 16)
    builder.emit("sb", "s3", "s0", 24)
    builder.emit("ld", "t0", "s0", 0)
    builder.emit("lw", "t1", "s0", 8)
    builder.emit("lwu", "t2", "s0", 8)
    builder.emit("lh", "t3", "s0", 16)
    builder.emit("lhu", "t4", "s0", 16)
    builder.emit("lb", "t5", "s0", 24)
    builder.emit("lbu", "t6", "s0", 24)
    builder.emit("add", "s3", "t1", "t2")
    builder.emit("add", "s3", "s3", "t3")
    builder.emit("add", "s3", "s3", "t5")
    # A data-dependent (unbiased-ish) branch plus jal/jalr control flow.
    builder.emit("andi", "t0", "s1", 1)
    builder.branch("beq", "t0", "x0", "even")
    builder.emit("xori", "s3", "s3", 0x55)
    builder.label("even")
    builder.jal("ra", "leaf")
    builder.emit("addi", "s1", "s1", 1)
    builder.branch("bltu", "s1", "s2", "loop")
    builder.emit("sd", "s3", "s0", 32)
    _exit_sequence(builder)
    builder.label("leaf")
    builder.emit("addi", "s3", "s3", 3)
    builder.emit("jalr", "x0", "ra", 0)
    return builder.link()


class TestLockstepCycleIdentity:
    def test_rv64im_edges(self):
        fast, _ = _assert_identical(_rv64im_edges_program())
        assert fast.timing_spans > 0          # the loop actually compiled
        assert fast.timing_compiled_instructions > 0

    def test_rv64im_edges_tiny_caches(self):
        config = RocketConfig(**_TINY_CACHES)
        _assert_identical(_rv64im_edges_program(), config=config)

    @pytest.mark.parametrize("seed", [0, 1, 7, 2019, 987654321])
    def test_cache_replacement_seeds(self, seed):
        config = RocketConfig(seed=seed, **_TINY_CACHES)
        _assert_identical(_rv64im_edges_program(), config=config)

    @pytest.mark.parametrize("fmt", ["decimal64", "decimal128"])
    def test_all_thirteen_rocc_funct_codes(self, fmt):
        """Every Table II funct code — including the DEC_ADDC/DEC_SUBB
        carry/borrow chains — interleaved with compiled spans."""
        image = _all_funct_program()
        _assert_identical(
            image,
            make_accel=lambda: _accelerator(fmt, include_multiplier=True),
        )

    @pytest.mark.parametrize("fmt", ["decimal64", "decimal128"])
    def test_method1_program_both_formats(self, fmt):
        solution = standard_solutions()[SolutionKind.METHOD1]
        config = TestProgramConfig(
            solution=SolutionKind.METHOD1,
            precision=TestProgramConfig.precision_for_format(fmt),
            num_samples=12,
            seed=2018,
        )
        program = build_test_program(config)
        # Full-memory equality (result buffers included) is asserted by
        # _assert_identical's page comparison.
        _assert_identical(
            program.image, make_accel=lambda: solution.make_accelerator(fmt)
        )

    def test_pipelined_accelerator_d2w1(self):
        """Staged pipeline (depth 2, width 1): occupancy bookkeeping must be
        identical whether commands issue from a span exit or the loop."""
        image = _all_funct_program()
        _assert_identical(
            image,
            make_accel=lambda: _accelerator(
                "decimal64", depth=2, width=1, include_multiplier=True
            ),
        )

    def test_software_solution_program(self):
        config = TestProgramConfig(
            solution=SolutionKind.SOFTWARE, num_samples=16, seed=2018
        )
        program = build_test_program(config)
        fast, _ = _assert_identical(program.image)
        assert fast.timing_spans > 0

    @pytest.mark.parametrize("limit", [37, 61, 97, 150, 333, 1021, 4096])
    def test_fuel_exhaustion_mid_run(self, limit):
        """Hitting max_instructions must leave both models in the same state
        — same pc, same registers, same cycle count — no matter where inside
        a compiled span the budget would have run out."""
        image = _rv64im_edges_program()
        (fast, fast_err), (slow, slow_err) = _run_pair(image, limit=limit)
        assert isinstance(fast_err, SimulationError)
        assert isinstance(slow_err, SimulationError)
        assert fast.instructions_retired == slow.instructions_retired == limit
        assert fast.hart.pc == slow.hart.pc
        assert fast.hart.regs == slow.hart.regs
        assert fast.cycle == slow.cycle

    def test_lru_caches_disable_the_tier(self):
        """LRU replacement is outside the span compiler's modelled state; the
        tier must quietly stay off and the emulator stays correct."""
        config = RocketConfig(
            icache=CacheConfig(replacement="lru"),
            dcache=CacheConfig(replacement="lru"),
        )
        fast, _ = _assert_identical(_rv64im_edges_program(), config=config)
        assert not fast.timing_tier
        assert fast.timing_spans == 0


def _smc_program(iterations=160, patch_at=120):
    """Hot loop that, on iteration ``patch_at``, rewrites one of its own
    instructions (with identical bytes, so architectural results do not
    change) — forcing a mid-span self-modifying-code deopt after the span
    has long been compiled.
    """
    builder = AsmBuilder()
    builder.data()
    builder.label("buf")
    builder.dword(0, 0)
    builder.text()
    builder.label("_start")
    builder.la("s0", "buf")
    builder.li("s1", 0)
    builder.li("s2", iterations)
    builder.li("s4", patch_at)
    builder.la("s5", "patchme")
    builder.label("loop")
    builder.label("patchme")
    builder.emit("addi", "s3", "s3", 1)
    builder.emit("sd", "s3", "s0", 0)
    builder.branch("bne", "s1", "s4", "nopatch")
    builder.emit("lwu", "t0", "s5", 0)        # read the instruction word...
    builder.emit("sw", "t0", "s5", 0)         # ...and store it back (SMC)
    builder.label("nopatch")
    builder.emit("addi", "s1", "s1", 1)
    builder.branch("bltu", "s1", "s2", "loop")
    _exit_sequence(builder)
    return builder.link()


class TestDeoptimisation:
    def test_smc_deopt_keeps_cycles_identical(self):
        fast, slow = _assert_identical(_smc_program())
        assert fast.timing_deopts >= 1
        assert fast.cycle == slow.cycle      # restated: the deopt is free


class TestWarmStart:
    def test_rocket_reset_is_bit_identical(self):
        """reset() + rerun (warm timing compiler, cold caches) must equal a
        cold construction in every counter."""
        image = _rv64im_edges_program()
        emulator = RocketEmulator(image)
        first = emulator.run()
        emulator.reset()
        second = emulator.run()
        cold = RocketEmulator(image).run()
        for attr in ("cycles", "sw_cycles", "hw_cycles",
                     "instructions_retired", "rocc_commands"):
            assert getattr(second, attr) == getattr(first, attr) == \
                getattr(cold, attr), attr
        for stats_attr in ("icache_stats", "dcache_stats"):
            warm = getattr(second, stats_attr)
            ref = getattr(cold, stats_attr)
            assert (warm.accesses, warm.hits, warm.misses) == \
                (ref.accesses, ref.hits, ref.misses), stats_attr

    def test_acquire_timed_hit_matches_cold_build(self):
        from repro.verification.database import VerificationDatabase

        solution = standard_solutions()[SolutionKind.METHOD1]
        runner = BatchRunner()
        shards = [
            VerificationDatabase(seed).generate_mix(10) for seed in (3, 4)
        ]
        for vectors in shards:
            config = TestProgramConfig(
                solution=SolutionKind.METHOD1, num_samples=len(vectors),
                seed=2018,
            )
            program, emulator = runner.acquire_timed(solution, config, vectors)
            warm = emulator.run()
            cold_program = build_test_program(config, vectors=vectors)
            for name, (base, data) in cold_program.image.segments.items():
                warm_base, warm_data = program.image.segments[name]
                assert warm_base == base
                assert bytes(warm_data) == bytes(data), name
            cold = RocketEmulator(
                cold_program.image,
                accelerator=solution.make_accelerator("decimal64"),
            ).run()
            assert warm.cycles == cold.cycles
            assert warm.instructions_retired == cold.instructions_retired
            assert program.read_results(warm) == \
                cold_program.read_results(cold)
        assert runner.timed_misses == 1 and runner.timed_hits == 1

    def test_preheat_matches_organic_promotion(self):
        """Warm-started promotion (Executor.preheat from a prior profile)
        must produce exactly the organic run's results and retire counts."""
        config = TestProgramConfig(
            solution=SolutionKind.SOFTWARE, num_samples=16, seed=2018
        )
        program = build_test_program(config)

        organic = SpikeSimulator(program.image)
        profile = organic.executor.enable_profiling()
        organic_result = organic.run()
        # Steady the organic simulator so the profile records every head
        # that matters.
        organic.reset()
        organic.run()

        warm = SpikeSimulator(program.image)
        armed = warm.executor.preheat(profile)
        assert armed > 0
        warm_result = warm.run()
        assert warm_result.instructions_retired == \
            organic_result.instructions_retired
        assert program.read_results(warm_result) == \
            program.read_results(organic_result)
        # The armed heads promoted on sight: steady state in round one.
        assert warm.executor.tier2_blocks >= len(profile.compiled)

    def test_batch_runner_reseeds_promotion_after_eviction(self):
        """An evicted shape's promoted heads survive in the runner and are
        re-armed when the shape is rebuilt; results stay bit-identical."""
        from repro.verification.database import VerificationDatabase

        vectors = VerificationDatabase(11).generate_mix(8)
        solution = standard_solutions()[SolutionKind.SOFTWARE]
        other = standard_solutions()[SolutionKind.METHOD1]
        runner = BatchRunner(max_entries=1)
        config = TestProgramConfig(
            solution=SolutionKind.SOFTWARE, num_samples=len(vectors),
            seed=2018,
        )
        other_config = TestProgramConfig(
            solution=SolutionKind.METHOD1, num_samples=len(vectors),
            seed=2018,
        )
        program, first = runner.run_functional(solution, config, vectors)
        reference = program.read_results(first)
        runner.run_functional(other, other_config, vectors)   # evicts
        program, again = runner.run_functional(solution, config, vectors)
        assert program.read_results(again) == reference
        assert again.instructions_retired == first.instructions_retired


class TestProfileSummary:
    def test_summary_renders_hot_side_exits(self):
        from repro.sim.executor import ExecProfile

        profile = ExecProfile()
        assert "hot side exits: none" in profile.summary()
        profile._exit(0x10000028, 0x100004d4)
        profile._exit(0x10000028, 0x100004d4)
        profile._exit(0x10000050, 0x10000100)
        text = profile.summary()
        assert "0x10000028" in text and "0x100004d4" in text
        assert text.index("0x100004d4") < text.index("0x10000100")
        snapshot = profile.snapshot()
        assert snapshot["hot_side_exits"][0]["count"] == 2

    def test_trace_trees_shrink_steady_state_tier1_residue(self):
        """After a few warm rounds every recurring side exit owns a compiled
        continuation: the steady-state tier-1 residue is (near) zero."""
        config = TestProgramConfig(
            solution=SolutionKind.SOFTWARE, num_samples=40, seed=2018
        )
        program = build_test_program(config)
        simulator = SpikeSimulator(program.image)
        simulator.run()
        for _ in range(6):
            simulator.reset()
            simulator.run()
        profile = simulator.executor.enable_profiling()
        simulator.reset()
        result = simulator.run()
        assert profile.tier1_instructions <= 64, (
            f"steady-state tier-1 residue {profile.tier1_instructions} "
            f"instructions (of {result.instructions_retired}) — trace-tree "
            "continuations should have absorbed the hot side exits"
        )
