"""Unit tests for the ISA layer: field packing, encoding and decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodingError, EncodingError
from repro.isa import encoding as enc
from repro.isa.decoder import decode_instruction
from repro.isa.encoder import encode_instruction
from repro.isa.instructions import (
    B_TYPE,
    I_TYPE,
    InstrFormat,
    R_TYPE,
    S_TYPE,
    SHIFT_IMM,
    U_TYPE,
    all_mnemonics,
)
from repro.isa.registers import parse_register, register_abi_name


class TestBitHelpers:
    def test_bits_extracts_inclusive_range(self):
        assert enc.bits(0b1101_0110, 6, 3) == 0b1010

    def test_sign_extend_negative(self):
        assert enc.sign_extend(0xFFF, 12) == -1
        assert enc.sign_extend(0x800, 12) == -2048

    def test_sign_extend_positive(self):
        assert enc.sign_extend(0x7FF, 12) == 2047

    def test_signed_unsigned_roundtrip(self):
        assert enc.to_signed64(enc.to_unsigned64(-5)) == -5
        assert enc.to_unsigned64(-1) == enc.MASK64

    def test_fits_signed(self):
        assert enc.fits_signed(2047, 12)
        assert enc.fits_signed(-2048, 12)
        assert not enc.fits_signed(2048, 12)

    @given(st.integers(min_value=0, max_value=enc.MASK64), st.integers(1, 64))
    def test_sign_extend_idempotent(self, value, width):
        once = enc.sign_extend(value, width)
        assert enc.sign_extend(once, width) == once


class TestRegisters:
    @pytest.mark.parametrize("name,number", [
        ("zero", 0), ("ra", 1), ("sp", 2), ("fp", 8), ("s0", 8),
        ("a0", 10), ("a7", 17), ("t6", 31), ("x13", 13), (5, 5),
    ])
    def test_parse_register(self, name, number):
        assert parse_register(name) == number

    def test_parse_register_rejects_unknown(self):
        with pytest.raises(EncodingError):
            parse_register("q7")
        with pytest.raises(EncodingError):
            parse_register(32)

    def test_abi_names_roundtrip(self):
        for number in range(32):
            assert parse_register(register_abi_name(number)) == number


def _sample_operands(mnemonic):
    """Representative operands for a round-trip test of each mnemonic."""
    if mnemonic in R_TYPE:
        return (5, 6, 7)
    if mnemonic in SHIFT_IMM:
        return (5, 6, 13)
    if mnemonic in I_TYPE:
        return (5, 6, -37)
    if mnemonic in S_TYPE:
        return (7, 6, 40)
    if mnemonic in B_TYPE:
        return (5, 6, -64)
    if mnemonic in U_TYPE:
        return (5, 0x12345)
    if mnemonic == "jal":
        return (1, 2048)
    if mnemonic in ("csrrw", "csrrs", "csrrc"):
        return (5, 0xC00, 6)
    if mnemonic in ("csrrwi", "csrrsi", "csrrci"):
        return (5, 0xC00, 9)
    return ()


class TestEncodeDecodeRoundtrip:
    @pytest.mark.parametrize("mnemonic", all_mnemonics())
    def test_roundtrip_every_mnemonic(self, mnemonic):
        operands = _sample_operands(mnemonic)
        word = encode_instruction(mnemonic, *operands)
        decoded = decode_instruction(word)
        assert decoded.mnemonic == mnemonic
        if mnemonic in R_TYPE:
            assert (decoded.rd, decoded.rs1, decoded.rs2) == operands
        elif mnemonic in SHIFT_IMM or mnemonic in I_TYPE:
            assert (decoded.rd, decoded.rs1, decoded.imm) == operands
        elif mnemonic in S_TYPE:
            assert (decoded.rs2, decoded.rs1, decoded.imm) == operands
        elif mnemonic in B_TYPE:
            assert (decoded.rs1, decoded.rs2, decoded.imm) == operands
        elif mnemonic in U_TYPE:
            assert decoded.rd == operands[0]
            assert decoded.imm == operands[1] << 12
        elif mnemonic == "jal":
            assert (decoded.rd, decoded.imm) == operands
        elif mnemonic.startswith("csr"):
            assert (decoded.rd, decoded.csr, decoded.rs1) == operands

    def test_known_encodings(self):
        # addi x0, x0, 0 is the canonical NOP 0x00000013.
        assert encode_instruction("addi", 0, 0, 0) == 0x00000013
        # add x1, x2, x3 == 0x003100b3 (checked against the RISC-V spec).
        assert encode_instruction("add", 1, 2, 3) == 0x003100B3
        assert encode_instruction("ecall") == 0x00000073
        assert encode_instruction("ebreak") == 0x00100073

    def test_branch_offset_range_checked(self):
        with pytest.raises(EncodingError):
            encode_instruction("beq", 1, 2, 4096)
        with pytest.raises(EncodingError):
            encode_instruction("beq", 1, 2, 3)  # odd offset

    def test_immediate_range_checked(self):
        with pytest.raises(EncodingError):
            encode_instruction("addi", 1, 2, 5000)
        with pytest.raises(EncodingError):
            encode_instruction("slli", 1, 2, 64)

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(EncodingError):
            encode_instruction("frobnicate", 1, 2, 3)

    def test_decoder_rejects_garbage(self):
        with pytest.raises(DecodingError):
            decode_instruction(0xFFFFFFFF)
        with pytest.raises(DecodingError):
            decode_instruction(0x0000007F)

    @given(
        st.sampled_from(sorted(B_TYPE)),
        st.integers(0, 31),
        st.integers(0, 31),
        st.integers(-2048, 2047),
    )
    def test_branch_offset_roundtrip(self, mnemonic, rs1, rs2, half_offset):
        offset = half_offset * 2
        word = encode_instruction(mnemonic, rs1, rs2, offset)
        decoded = decode_instruction(word)
        assert decoded.imm == offset
        assert decoded.fmt == InstrFormat.B

    @given(st.integers(0, 31), st.integers(-(1 << 19), (1 << 19) - 1))
    def test_jal_offset_roundtrip(self, rd, half_offset):
        offset = half_offset * 2
        word = encode_instruction("jal", rd, offset)
        decoded = decode_instruction(word)
        assert decoded.imm == offset and decoded.rd == rd
