"""Tests for the assembler layer: builder, text parser, linker, macros."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm.builder import AsmBuilder
from repro.asm.linker import Linker, dump_disassembly
from repro.asm.macros import make_macro, standard_macros, table_iii_rows
from repro.asm.parser import assemble_source
from repro.asm.program import DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE, Program, Section
from repro.errors import AssemblerError, LinkError
from repro.isa.decoder import decode_instruction


def _link_and_read_text(builder):
    image = builder.link()
    base, data = image.segments[".text"]
    words = [int.from_bytes(data[i:i + 4], "little") for i in range(0, len(data), 4)]
    return image, base, words


class TestBuilder:
    def test_emit_and_label_addresses(self):
        b = AsmBuilder()
        b.text()
        b.label("_start")
        b.emit("addi", "a0", "zero", 1)
        b.label("second")
        b.nop()
        image, base, words = _link_and_read_text(b)
        assert image.symbol("_start") == base
        assert image.symbol("second") == base + 4
        assert decode_instruction(words[0]).mnemonic == "addi"

    def test_branch_fixups_forward_and_backward(self):
        b = AsmBuilder()
        b.label("top")
        b.nop()
        b.branch("bne", "a0", "a1", "bottom")
        b.branch("beq", "a0", "a1", "top")
        b.label("bottom")
        b.nop()
        _image, _base, words = _link_and_read_text(b)
        forward = decode_instruction(words[1])
        backward = decode_instruction(words[2])
        assert forward.imm == 8        # two instructions ahead
        assert backward.imm == -8      # two instructions back

    def test_la_materialises_data_address(self):
        b = AsmBuilder()
        b.data()
        b.label("value")
        b.dword(0xDEAD)
        b.text()
        b.label("_start")
        b.la("a0", "value")
        image, _base, words = _link_and_read_text(b)
        lui = decode_instruction(words[0])
        addi = decode_instruction(words[1])
        materialised = (lui.imm + addi.imm) & 0xFFFFFFFF
        assert materialised == image.symbol("value")

    @pytest.mark.parametrize("value", [
        0, 1, -1, 2047, -2048, 2048, 0x7FFFFFFF, -0x80000000,
        0x123456789ABCDEF0, 0xFFFFFFFFFFFFFFFF, 1 << 63, 10**16 - 1,
    ])
    def test_li_sequences_are_bounded(self, value):
        b = AsmBuilder()
        b.li("a0", value)
        assert len(b.current_section) <= 8 * 4  # at most 8 instructions

    def test_rocc_emission(self):
        b = AsmBuilder()
        b.rocc("DEC_ADD", rd="a2", rs1="a1", rs2="a0", xd=True, xs1=True, xs2=True)
        _image, _base, words = _link_and_read_text(b)
        decoded = decode_instruction(words[0])
        assert decoded.mnemonic == "rocc" and decoded.funct7 == 4

    def test_rocc_unknown_function(self):
        with pytest.raises(AssemblerError):
            AsmBuilder().rocc("NOPE")

    def test_data_directives(self):
        b = AsmBuilder()
        b.data()
        b.label("bytes")
        b.byte(1, 2, 3)
        b.align(8)
        b.label("words")
        b.word(0x11223344)
        b.label("dwords")
        b.dword(0x1122334455667788)
        b.label("text")
        b.asciz("hi")
        b.space(5, fill=0xAA)
        image = b.link()
        base, data = image.segments[".data"]
        assert data[0:3] == bytes([1, 2, 3])
        assert image.symbol("words") % 8 == 0
        offset = image.symbol("dwords") - base
        assert data[offset:offset + 8] == (0x1122334455667788).to_bytes(8, "little")

    def test_prologue_epilogue_roundtrip_size(self):
        b = AsmBuilder()
        frame = b.prologue(("ra", "s0", "s1"))
        b.epilogue(("ra", "s0", "s1"))
        assert frame % 16 == 0
        assert len(b.current_section) == 4 * (1 + 3 + 3 + 1 + 1)

    def test_duplicate_label_rejected(self):
        b = AsmBuilder()
        b.label("x")
        with pytest.raises(LinkError):
            b.label("x")


class TestLinker:
    def test_undefined_label_raises(self):
        b = AsmBuilder()
        b.j("nowhere")
        with pytest.raises(LinkError):
            b.link()

    def test_custom_bases(self):
        b = AsmBuilder()
        b.label("_start")
        b.nop()
        image = b.link(text_base=0x4000, data_base=0x8000)
        assert image.segment_range(".text")[0] == 0x4000

    def test_overlap_detection(self):
        program = Program()
        program.sections[".text"] = Section(".text", data=bytearray(64))
        program.sections[".data"] = Section(".data", data=bytearray(64))
        linker = Linker(text_base=0x1000, data_base=0x1010)
        with pytest.raises(LinkError):
            linker.link(program)

    def test_entry_defaults_to_text_base(self):
        b = AsmBuilder()
        b.nop()
        image = b.link()
        assert image.entry == DEFAULT_TEXT_BASE

    def test_disassembly_dump(self):
        b = AsmBuilder()
        b.label("_start")
        b.emit("addi", "a0", "zero", 7)
        image = b.link()
        text = dump_disassembly(image)
        assert "_start:" in text and "addi" in text


class TestParser:
    def test_parser_matches_builder(self):
        source = """
        .data
        value: .dword 42
        .text
        _start:
            la a0, value       # address of the constant
            ld a1, 0(a0)
            addi a1, a1, 5
            sd a1, 8(a0)
            li t0, 0x1234
            beq a1, t0, _start
            dec_add a2, a1, a0
            ret
        """
        parsed = assemble_source(source)
        image = parsed.link()
        assert "value" in image.symbols and "_start" in image.symbols
        base, data = image.segments[".text"]
        words = [int.from_bytes(data[i:i + 4], "little") for i in range(0, len(data), 4)]
        mnemonics = [decode_instruction(word).mnemonic for word in words]
        assert mnemonics[2] == "ld"
        assert "rocc" in mnemonics
        assert mnemonics[-1] == "jalr"

    def test_parser_reports_line_numbers(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble_source("nop\nbogus a0, a1\n")
        assert "line 2" in str(excinfo.value)

    @pytest.mark.parametrize("source", [
        ".asciz unquoted",
        "lw a0, a1",            # missing offset(base)
        ".unknown 3",
        "beq a0, a1, 16",       # numeric branch target
    ])
    def test_parser_rejects_bad_syntax(self, source):
        with pytest.raises(AssemblerError):
            assemble_source(source)

    def test_pseudo_instructions(self):
        parsed = assemble_source(
            "_start:\n mv a0, a1\n not a2, a3\n seqz a4, a5\n rdcycle t0\n j _start\n"
        )
        image = parsed.link()
        _base, data = image.segments[".text"]
        assert len(data) == 5 * 4


class TestMacros:
    def test_paper_register_convention(self):
        macro = make_macro("DEC_ADD")
        assert macro.instruction.rs1 == 11
        assert macro.instruction.rs2 == 10
        assert macro.instruction.rd == 12

    def test_inline_asm_contains_word_directive(self):
        macro = make_macro("DEC_ADD")
        assert ".word 0x" in macro.inline_asm
        assert "DEC_ADD_rocc" in macro.c_wrapper()

    def test_standard_macro_set_covers_table_ii(self):
        macros = standard_macros()
        assert set(macros) == {
            "CLR_ALL", "WR", "RD", "DEC_ADD", "DEC_ACCUM", "DEC_CNV",
            "DEC_MUL", "ACCUM", "LD",
        }

    def test_table_iii_rows_roundtrip(self):
        rows = table_iii_rows()
        assert [row["instruction"] for row in rows] == ["CLR_ALL", "RD", "WR", "DEC_ADD"]
        for row in rows:
            word = int(row["hex"], 16)
            assert decode_instruction(word).mnemonic == "rocc"
            assert f"{word & 0x7F:07b}" == row["opcode"]


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1))
def test_li_roundtrip_via_simulation(value):
    """Property: ``li`` materialises any 64-bit constant exactly."""
    from tests.conftest import run_fragment

    def body(b):
        b.li("t0", value & 0xFFFFFFFFFFFFFFFF)
        b.emit("sd", "t0", "a5", 0)

    result = run_fragment(body)
    assert result.read_dword("out") == value & 0xFFFFFFFFFFFFFFFF
