"""Tests for the coverage-guided fuzz engine (mutators, shrinking, campaigns).

The engine's contract: campaigns are pure functions of their config (same
seed => same batches, coverage and failures), every mutated operand stays
decimal64-encodable, generation is steered toward unhit result conditions,
and failing batches shrink to minimal replayable reproducers.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.decnumber.number import DecNumber
from repro.errors import ConfigurationError
from repro.fuzz import (
    MUTATORS,
    FuzzCampaign,
    FuzzConfig,
    Reproducer,
    choose_mutator,
    ddmin,
    replay,
    run_fuzz_campaign,
    shrink_failure,
    vector_from_json,
    vector_to_json,
)
from repro.fuzz.shrink import _Budget
from repro.verification.coverage import CoverageTracker
from repro.verification.database import VerificationDatabase, VerificationVector
from repro.verification.reference import GoldenReference


# -------------------------------------------------------------------- mutators
def test_every_mutator_produces_encodable_operands():
    reference = GoldenReference()
    rng = random.Random(3)
    corpus = [
        (vector.x, vector.y)
        for vector in VerificationDatabase(3).generate_mix(40, classes=(
            "normal", "overflow", "underflow", "special", "zero"
        ))
    ]
    for mutator in MUTATORS:
        for _ in range(60):
            x, y = rng.choice(corpus)
            x, y = mutator(rng, x, y)
            for operand in (x, y):
                decoded = reference.decode(reference.encode_operand(operand))
                assert decoded.kind == operand.kind
                if operand.is_finite:
                    assert (
                        decoded.sign, decoded.coefficient, decoded.exponent
                    ) == (operand.sign, operand.coefficient, operand.exponent), (
                        f"{mutator.name} produced non-canonical {operand!r}"
                    )


def test_mutators_are_deterministic_per_rng_seed():
    corpus_vector = VerificationDatabase(4).generate_mix(1)[0]
    for mutator in MUTATORS:
        first = mutator(random.Random(9), corpus_vector.x, corpus_vector.y)
        second = mutator(random.Random(9), corpus_vector.x, corpus_vector.y)
        assert first == second


def test_choose_mutator_steers_toward_unhit_conditions():
    rng = random.Random(0)
    unhit = frozenset({"overflow"})
    counts = {}
    for _ in range(3000):
        name = choose_mutator(rng, unhit).name
        counts[name] = counts.get(name, 0) + 1
    # exponent-up targets overflow and must dominate untargeted mutators...
    assert counts["exponent-up"] > 2 * counts.get("digit-tweak", 0)
    # ...but no mutator is ever starved (base weight 1).
    assert all(mutator.name in counts for mutator in MUTATORS)


# -------------------------------------------------------------------- shrinking
def _mkvec(index, x=None, y=None, klass="t"):
    return VerificationVector(
        x=x if x is not None else DecNumber(0, 123456, 2),
        y=y if y is not None else DecNumber(1, 77, -3),
        operand_class=klass,
        index=index,
    )


def test_ddmin_isolates_the_single_failing_vector():
    bad = _mkvec(5, x=DecNumber.infinity(0))
    vectors = [_mkvec(index) for index in range(8)]
    vectors[5] = bad

    def predicate(subset):
        return any(vector.x.is_infinite for vector in subset)

    result = ddmin(vectors, predicate, _Budget(64))
    assert result == [bad]


def test_ddmin_keeps_coupled_pairs():
    vectors = [_mkvec(index) for index in range(6)]

    def predicate(subset):
        indices = {vector.index for vector in subset}
        return {1, 4} <= indices

    result = ddmin(vectors, predicate, _Budget(64))
    assert sorted(vector.index for vector in result) == [1, 4]


def test_shrink_failure_simplifies_operands():
    bad = _mkvec(2, x=DecNumber(1, 987654321, -7), y=DecNumber(0, 333, 12))
    vectors = [_mkvec(index) for index in range(5)]
    vectors[2] = bad

    def predicate(subset):
        # Fails whenever any vector has a negative x: sign is the essence,
        # everything else about the operands should shrink away.
        return any(vector.x.sign == 1 for vector in subset)

    result = shrink_failure(vectors, predicate)
    assert len(result) == 1
    survivor = result[0]
    assert survivor.x.sign == 1
    assert survivor.x.coefficient < 987654321   # simplified
    assert survivor.y == DecNumber(0, 1, 0)     # irrelevant operand -> 1


def test_shrink_failure_returns_input_when_not_reproducible():
    vectors = [_mkvec(index) for index in range(3)]
    result = shrink_failure(vectors, lambda subset: False)
    assert result == vectors


# ---------------------------------------------------------------- serialization
def test_vector_json_round_trip():
    for vector in (
        _mkvec(7),
        _mkvec(0, x=DecNumber.snan(321, 1), y=DecNumber.infinity(1)),
        _mkvec(1, x=DecNumber(1, 0, -398), klass="fuzz:make-zero"),
    ):
        assert vector_from_json(vector_to_json(vector)) == vector
        # And through actual JSON text, as the CLI writes it.
        assert vector_from_json(
            json.loads(json.dumps(vector_to_json(vector)))
        ) == vector


# ------------------------------------------------------------------- campaigns
def test_fuzz_config_validation():
    with pytest.raises(ConfigurationError):
        FuzzConfig(budget=0)
    with pytest.raises(ConfigurationError):
        FuzzConfig(batch_size=0)
    with pytest.raises(ConfigurationError):
        FuzzConfig(solution="quantum")
    with pytest.raises(ConfigurationError):
        FuzzConfig(max_failures=0)


def test_campaign_is_deterministic_and_respects_budget():
    config = FuzzConfig(seed=2018, budget=96, batch_size=48)
    first = FuzzCampaign(config).run()
    second = FuzzCampaign(config).run()
    assert first.ok and second.ok
    assert first.vectors_run == second.vectors_run == 96
    assert first.batches_run == second.batches_run == 2
    assert first.corpus_size == second.corpus_size
    assert dict(first.coverage.condition_counts) == dict(
        second.coverage.condition_counts
    )
    assert dict(first.coverage.class_counts) == dict(
        second.coverage.class_counts
    )


def test_campaign_reaches_full_condition_coverage():
    report = run_fuzz_campaign(seed=2018, budget=192, batch_size=48)
    assert report.ok
    covered = report.coverage.covered_conditions()
    assert covered == frozenset(CoverageTracker.CONDITIONS)
    assert report.coverage_events  # steering actually extended coverage
    assert "11/11" in report.describe()


def test_campaign_workload_corpus_and_spike_rocket_only():
    report = run_fuzz_campaign(
        seed=5, budget=32, batch_size=32,
        workload="carry-stress", models=("spike", "rocket"),
    )
    assert report.ok
    assert report.config.workload == "carry-stress"
    # Fuzz vectors are tagged with their mutator lineage.
    assert all(
        name.startswith("fuzz:") for name in report.coverage.class_counts
    )


def test_campaign_time_limit_stops_between_batches():
    report = run_fuzz_campaign(seed=6, budget=10_000, batch_size=8,
                               time_limit=0.0)
    assert report.batches_run == 0
    assert report.vectors_run == 0


def test_campaign_summary_is_json_ready():
    report = run_fuzz_campaign(seed=8, budget=32, batch_size=32)
    summary = json.loads(json.dumps(report.to_summary()))
    assert summary["seed"] == 8
    assert summary["vectors_run"] == 32
    assert summary["failures"] == []
    assert set(summary["coverage"]["conditions"]) == set(
        CoverageTracker.CONDITIONS
    )


# ------------------------------------------------------------------------- CLI
def test_fuzz_cli_clean_run_and_json(tmp_path, capsys):
    from repro.fuzz.__main__ import main

    out_path = tmp_path / "fuzz.json"
    code = main([
        "--seed", "2018", "--budget", "32", "--batch-size", "32",
        "--json", str(out_path),
    ])
    captured = capsys.readouterr().out
    assert code == 0
    assert "fuzz campaign: seed 2018" in captured
    data = json.loads(out_path.read_text())
    assert data["vectors_run"] == 32

    # Replaying a report with no failures is a no-op success.
    code = main(["--replay", str(out_path)])
    assert code == 0
    assert "no recorded failures" in capsys.readouterr().out


def test_fuzz_cli_rejects_unknown_workload_and_model():
    from repro.fuzz.__main__ import main

    with pytest.raises(ConfigurationError, match="unknown workload"):
        main(["--workload", "nope", "--budget", "8"])
    with pytest.raises(SystemExit):
        main(["--models", "spike,verilator"])


def test_fuzz_cli_reports_failures_with_exit_code(tmp_path, capsys, monkeypatch):
    import repro.gem5.atomic_cpu as atomic_cpu
    from repro.fuzz.__main__ import main
    from repro.sim.memory import SparseMemory

    class Broken(SparseMemory):
        def write(self, address, size, value):
            if size == 8 and value & 0x2:
                value ^= 1
            super().write(address, size, value)

    monkeypatch.setattr(atomic_cpu, "SparseMemory", Broken)
    out_path = tmp_path / "fuzz.json"
    code = main([
        "--seed", "7", "--budget", "32", "--batch-size", "32",
        "--max-failures", "1", "--json", str(out_path),
    ])
    captured = capsys.readouterr().out
    assert code == 1
    assert "[divergence]" in captured
    data = json.loads(out_path.read_text())
    assert data["failures"]
    recorded = Reproducer.from_json(data["failures"][0])
    assert replay(recorded).failed          # bug still present

    # --replay drives the recorded reproducer and reports it still failing.
    code = main(["--replay", str(out_path)])
    assert code == 1
    assert "still fails" in capsys.readouterr().out

    # Once the bug is fixed, the same reproducer replays clean.
    monkeypatch.undo()
    code = main(["--replay", str(out_path)])
    assert code == 0
    assert "no longer fails" in capsys.readouterr().out
