"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.asm.builder import AsmBuilder
from repro.asm.program import TOHOST_ADDRESS
from repro.rocc.decimal_accel import DecimalAccelerator
from repro.sim.spike import SpikeSimulator
from repro.verification.database import VerificationDatabase
from repro.verification.reference import GoldenReference


@pytest.fixture
def database():
    """A deterministic verification database."""
    return VerificationDatabase(seed=1234)


@pytest.fixture
def golden():
    return GoldenReference()


@pytest.fixture
def accelerator():
    return DecimalAccelerator()


def run_fragment(body, data=None, accelerator=None, result_dwords=4):
    """Assemble and run a small code fragment, returning the simulation result.

    ``body(builder)`` emits instructions; it may store results relative to the
    ``out`` symbol (address in register ``a5`` on entry).  The fragment must
    leave the program counter alone (no infinite loops); the harness appends
    the HTIF exit sequence.
    """
    builder = AsmBuilder()
    builder.data()
    builder.label("out")
    builder.dword(*([0] * result_dwords))
    if data is not None:
        data(builder)
    builder.text()
    builder.label("_start")
    builder.la("a5", "out")
    body(builder)
    builder.li("t5", TOHOST_ADDRESS)
    builder.li("t6", 1)
    builder.emit("sd", "t6", "t5", 0)
    builder.label("spin")
    builder.j("spin")
    image = builder.link()
    simulator = SpikeSimulator(image, accelerator=accelerator)
    return simulator.run()


@pytest.fixture
def fragment_runner():
    return run_fragment
