"""Property-based dual-oracle tests for decimal128: decnumber vs stdlib.

The decimal128 mirror of ``tests/test_differential_oracle.py``: thousands of
seeded operand pairs — plus directed NaN-payload, signed-zero and subnormal
edges — must produce bit-identical results from our decNumber port and from
Python's independently implemented stdlib :mod:`decimal` module, both under
the decimal128 context (34 digits, emax 6144, clamp).  Any disagreement in a
differential campaign is then a real finding, not oracle noise.
"""

from __future__ import annotations

import random

import pytest

from repro.decnumber import decimal128
from repro.decnumber.arith import multiply
from repro.decnumber.number import DecNumber
from repro.verification.database import OperandClass, VerificationDatabase
from repro.verification.differential import (
    DualOracleChecker,
    StdlibDecimalReference,
)
from repro.verification.reference import GoldenReference

ETINY = decimal128.ETINY          # -6176
ETOP = decimal128.ETOP            # 6111
PRECISION = decimal128.PRECISION  # 34


def _stdlib_multiply(x: DecNumber, y: DecNumber) -> DecNumber:
    ctx = decimal128.context().to_python_context()
    return DecNumber.from_decimal(ctx.multiply(x.to_decimal(), y.to_decimal()))


def _decnumber_multiply(x: DecNumber, y: DecNumber) -> DecNumber:
    return multiply(x, y, decimal128.context())


def _assert_same(x: DecNumber, y: DecNumber) -> None:
    ours = _decnumber_multiply(x, y)
    theirs = _stdlib_multiply(x, y)
    assert (ours.kind, ours.sign, ours.coefficient, ours.exponent) == (
        theirs.kind,
        theirs.sign,
        theirs.coefficient,
        theirs.exponent,
    ), f"{x} * {y}: decnumber {ours!r} != stdlib {theirs!r}"


# ---------------------------------------------------------------- seeded sweep
def test_seeded_sweep_all_classes_matches_stdlib_decimal128():
    """>=5k constrained-random decimal128 pairs across every class agree."""
    database = VerificationDatabase(seed=20260728, fmt="decimal128")
    vectors = database.generate_mix(5120, OperandClass.ALL)
    assert len(vectors) >= 5000
    for vector in vectors:
        _assert_same(vector.x, vector.y)


def test_random_wide_sweep_matches_stdlib_decimal128():
    """Unconstrained random finite pairs over the full decimal128 envelope."""
    rng = random.Random(971)
    for _ in range(1500):
        x = DecNumber(
            rng.randint(0, 1),
            rng.randint(0, 10 ** rng.randint(1, PRECISION) - 1),
            rng.randint(ETINY, ETOP),
        )
        y = DecNumber(
            rng.randint(0, 1),
            rng.randint(0, 10 ** rng.randint(1, PRECISION) - 1),
            rng.randint(ETINY, ETOP),
        )
        _assert_same(x, y)


# -------------------------------------------------------------- directed edges
@pytest.mark.parametrize("payload", [0, 1, 999, 999_999, 10 ** 33 - 1])
@pytest.mark.parametrize("sign", [0, 1])
def test_nan_payload_propagation_matches(payload, sign):
    finite = DecNumber(0, 5, 0)
    for nan in (DecNumber.qnan(payload, sign), DecNumber.snan(payload, sign)):
        _assert_same(nan, finite)
        _assert_same(finite, nan)
        _assert_same(nan, DecNumber.qnan(7, 1 - sign))


def test_signed_zero_products_match():
    for sx in (0, 1):
        for sy in (0, 1):
            _assert_same(DecNumber(sx, 0, 10), DecNumber(sy, 123, -5))
            _assert_same(DecNumber(sx, 0, ETINY), DecNumber(sy, 0, ETOP))
            _assert_same(DecNumber(sx, 0, 0), DecNumber.infinity(sy))


def test_subnormal_edges_match():
    cases = [
        (DecNumber(0, 1, ETINY), DecNumber(0, 1, 0)),       # smallest subnormal
        (DecNumber(0, 1, -3088), DecNumber(0, 1, -3088)),   # etiny product
        (DecNumber(0, 5, -3100), DecNumber(0, 1, -3099)),   # below etiny
        (DecNumber(0, 10 ** 33, ETINY), DecNumber(0, 1, 0)),
        (DecNumber(1, 10 ** PRECISION - 1, -6143), DecNumber(0, 1, -33)),
        (DecNumber(0, 3, ETINY), DecNumber(1, 1, -1)),      # rounds to zero
    ]
    for x, y in cases:
        _assert_same(x, y)


def test_overflow_and_clamp_edges_match():
    nines = 10 ** PRECISION - 1
    cases = [
        (DecNumber(0, nines, ETOP), DecNumber(0, 1, 0)),
        (DecNumber(0, 10 ** 17, 3100), DecNumber(0, 10 ** 17, 3011)),
        (DecNumber(0, 1, ETOP), DecNumber(0, 1, 5)),        # fold-down clamp
        (DecNumber(1, 123, 6112), DecNumber(0, 45, 5)),
    ]
    for x, y in cases:
        _assert_same(x, y)


def test_rounding_ties_match():
    """Products ending in exactly ...5 with even/odd quotient digits."""
    base = 10 ** 33
    cases = [
        (DecNumber(0, base + 5, 0), DecNumber(0, 10 ** 31, 0)),
        (DecNumber(0, base + 15, 0), DecNumber(0, 10 ** 31, 0)),
        (DecNumber(0, 10 ** PRECISION - 1, 0), DecNumber(0, 10 ** PRECISION - 1, 0)),
    ]
    for x, y in cases:
        _assert_same(x, y)


# ---------------------------------------------------- format-scoped references
def test_stdlib_reference_picks_decimal128_context():
    reference = StdlibDecimalReference(precision="decimal128")
    ctx = reference.context()
    assert (ctx.prec, ctx.Emax, ctx.Emin) == (34, 6144, -6143)
    golden = GoldenReference(precision="quad")
    database = VerificationDatabase(seed=5, fmt="decimal128")
    for vector in database.generate_mix(250, OperandClass.ALL):
        second = reference.compute(vector.x, vector.y)
        primary = golden.compute(vector.x, vector.y)
        assert second.encoded == primary.encoded
    overflowed = reference.compute(
        DecNumber(0, 10 ** PRECISION - 1, ETOP), DecNumber(0, 9, 0)
    )
    assert "overflow" in overflowed.flags
    assert overflowed.value.is_infinite
    tiny = reference.compute(DecNumber(0, 1, ETINY), DecNumber(0, 1, -1))
    assert "underflow" in tiny.flags


def test_dual_checker_under_decimal128_passes_on_correct_words():
    vectors = VerificationDatabase(seed=17, fmt="decimal128").generate_mix(32)
    golden = GoldenReference(precision="decimal128")
    words = [golden.compute(v.x, v.y).encoded for v in vectors]
    report = DualOracleChecker(fmt="decimal128").check_run(vectors, words)
    assert report.all_passed
    assert not report.oracle_disagreements
    # A flipped bit is a kernel check failure, not an oracle split.
    words[3] ^= 1 << 100
    report = DualOracleChecker(fmt="decimal128").check_run(vectors, words)
    assert report.failed == 1
    assert not report.oracle_disagreements
