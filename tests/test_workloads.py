"""Workload registry: determinism, legacy bit-identity, end-to-end runs."""

import pytest

from repro.core.campaign import (
    CampaignCell,
    run_table_iv_campaign,
    run_workload_campaign,
    workload_cells,
)
from repro.core.evaluation import EvaluationFramework, run_solution_shard
from repro.core.reporting import render_workload_matrix, render_workload_tables
from repro.core.solution import standard_solutions
from repro.errors import ConfigurationError
from repro.testgen.config import SolutionKind, TestProgramConfig
from repro.testgen.generator import generate_vectors
from repro.verification.database import VerificationDatabase
from repro.verification.reference import GoldenReference
from repro.workloads import (
    BUILTIN_WORKLOADS,
    Workload,
    get_workload,
    register,
    unregister,
    workload_names,
    workload_vectors,
)

SEED = 2018
SAMPLES = 200

EXPECTED_BUILTINS = {
    "paper-uniform", "telco-billing", "currency-fx", "tax-ladder",
    "sparse-digits", "carry-stress", "special-values", "mac-chain",
}


class TestRegistry:
    def test_builtins_registered(self):
        assert EXPECTED_BUILTINS <= set(workload_names())
        assert len(BUILTIN_WORKLOADS) == 8
        for workload in BUILTIN_WORKLOADS:
            assert get_workload(workload.name) is workload
            assert workload.description

    def test_unknown_name_raises_with_suggestion(self):
        with pytest.raises(ConfigurationError, match="telco-billing"):
            get_workload("telco-biling")
        with pytest.raises(ConfigurationError, match="registered:"):
            get_workload("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        class Dup(Workload):
            name = "paper-uniform"

        with pytest.raises(ConfigurationError, match="already registered"):
            register(Dup())

    def test_register_and_unregister_custom(self):
        class Tiny(Workload):
            name = "tiny-test-workload"
            description = "one fixed pair"

            def pair(self, rng, index):
                from repro.decnumber.number import DecNumber

                return DecNumber(0, 25, 0), DecNumber(0, 4, 0)

        try:
            register(Tiny())
            vectors = get_workload("tiny-test-workload").vectors(3, seed=1)
            assert len(vectors) == 3
            assert vectors[0].operand_class == "tiny-test-workload"
        finally:
            unregister("tiny-test-workload")
        with pytest.raises(ConfigurationError):
            get_workload("tiny-test-workload")

    def test_config_objects_validate_workload(self):
        # The cell validates eagerly (it is built in the parent, where the
        # registry holds any user-registered workload) …
        with pytest.raises(ConfigurationError):
            CampaignCell(
                solution=standard_solutions()[SolutionKind.SOFTWARE],
                num_samples=4,
                workload="no-such-scenario",
            )
        # … while the program config resolves the name only when vectors
        # are actually generated from it.
        config = TestProgramConfig(num_samples=4, workload="no-such-scenario")
        with pytest.raises(ConfigurationError):
            generate_vectors(config)

    def test_worker_side_config_carries_unregistered_workload(self):
        """A shard worker builds its TestProgramConfig from a workload name
        that may only be registered in the parent (spawn/forkserver start
        methods).  The vectors ship with the task, so the run must succeed
        with the name kept as provenance."""
        solution = standard_solutions()[SolutionKind.SOFTWARE]
        vectors = get_workload("telco-billing").vectors(4, seed=3)
        outcome = run_solution_shard(
            solution, vectors, seed=3, workload="only-registered-in-parent"
        )
        assert outcome.shard_report.check_failed == 0
        assert outcome.program.config.workload == "only-registered-in-parent"

    def test_describe_metadata(self):
        info = get_workload("carry-stress").describe()
        assert info["name"] == "carry-stress"
        assert "stress" in info["tags"]


class TestDeterminismAndEncodability:
    @pytest.mark.parametrize("name", sorted(EXPECTED_BUILTINS))
    def test_same_seed_same_vectors(self, name):
        # Operation-only workloads (mac-chain) draw under their declared
        # operation; everything else keeps the legacy multiply call shape.
        workload = get_workload(name)
        operation = workload.operations[0]
        first = workload_vectors(workload, 40, seed=9, operation=operation)
        second = workload_vectors(workload, 40, seed=9, operation=operation)
        assert first == second
        assert [vector.index for vector in first] == list(range(40))

    @pytest.mark.parametrize("name", sorted(EXPECTED_BUILTINS))
    def test_different_seed_different_vectors(self, name):
        workload = get_workload(name)
        operation = workload.operations[0]
        assert (workload_vectors(workload, 40, seed=9, operation=operation)
                != workload_vectors(workload, 40, seed=10,
                                    operation=operation))

    @pytest.mark.parametrize("name", sorted(EXPECTED_BUILTINS))
    def test_operands_are_decimal64_exact(self, name):
        """Every operand must round-trip through the interchange encoding,
        otherwise the kernel would compute on a different value than the
        golden model."""
        reference = GoldenReference()
        workload = get_workload(name)
        vectors = workload_vectors(workload, 60, seed=5,
                                   operation=workload.operations[0])
        for vector in vectors:
            operands = list(vector.operands)
            for operand in operands:
                decoded = reference.decode(reference.encode_operand(operand))
                if operand.is_finite:
                    assert decoded == operand
                else:
                    assert decoded.kind == operand.kind

    def test_non_paper_vectors_tagged_with_workload_name(self):
        vectors = get_workload("currency-fx").vectors(5, seed=2)
        assert {vector.operand_class for vector in vectors} == {"currency-fx"}

    def test_oracle_hook_matches_golden_reference(self):
        reference = GoldenReference()
        workload = get_workload("telco-billing")
        for vector in workload.vectors(10, seed=3):
            expected = workload.expected(vector.x, vector.y)
            golden = reference.compute(vector.x, vector.y)
            assert expected.encoded == golden.encoded

    def test_custom_oracle_drives_functional_verification(self):
        """run_solution_shard judges results with the workload's expected()
        override, not unconditionally with the golden library."""
        from repro.errors import VerificationError

        class WrongOracle(Workload):
            name = "wrong-oracle-workload"
            description = "oracle that contradicts every kernel result"

            def pair(self, rng, index):
                from repro.decnumber.number import DecNumber

                return (DecNumber(0, rng.randint(1, 99), 0),
                        DecNumber(0, rng.randint(1, 99), 0))

            def expected(self, x, y):
                from repro.decnumber.number import DecNumber
                from repro.verification.reference import GoldenResult

                wrong = DecNumber(0, 123_456_789, 42)
                return GoldenResult(
                    value=wrong,
                    encoded=self._reference().encode_operand(wrong),
                    flags=frozenset(),
                )

        solution = standard_solutions()[SolutionKind.SOFTWARE]
        try:
            register(WrongOracle())
            vectors = get_workload("wrong-oracle-workload").vectors(3, seed=1)
            with pytest.raises(VerificationError):
                run_solution_shard(solution, vectors, seed=1,
                                   workload="wrong-oracle-workload")
        finally:
            unregister("wrong-oracle-workload")


class TestPaperUniformBitIdentity:
    """The acceptance property: naming the paper's mix as a workload changes
    nothing — vectors, generator output and merged campaign reports are all
    bit-identical to the legacy class-mix path at the same seed."""

    def test_vectors_match_legacy_database(self):
        workload = get_workload("paper-uniform")
        legacy = VerificationDatabase(SEED).generate_mix(SAMPLES)
        assert workload.vectors(SAMPLES, SEED) == legacy

    def test_generate_vectors_workload_config(self):
        legacy = generate_vectors(
            TestProgramConfig(num_samples=50, seed=SEED)
        )
        via_workload = generate_vectors(
            TestProgramConfig(num_samples=50, seed=SEED,
                              workload="paper-uniform")
        )
        assert legacy == via_workload

    def test_framework_workload_axis(self):
        legacy = EvaluationFramework(num_samples=30, seed=SEED)
        scenario = EvaluationFramework(num_samples=30, seed=SEED,
                                       workload="paper-uniform")
        assert legacy.vectors == scenario.vectors

    def test_serial_vs_sharded_campaign_bit_identical(self):
        """Serial legacy path vs the sharded --workload paper-uniform
        campaign at 200 samples: merged reports match bit for bit."""
        legacy = EvaluationFramework(
            num_samples=SAMPLES, seed=SEED
        ).evaluate_table_iv()
        campaign = run_table_iv_campaign(
            num_samples=SAMPLES, seed=SEED, workers=2,
            workload="paper-uniform",
        ).table_iv()
        assert legacy.rows() == campaign.rows()
        for kind, serial in legacy.reports.items():
            merged = campaign.reports[kind]
            assert serial.per_sample_cycles == merged.per_sample_cycles
            assert serial.hw_cycles_total == merged.hw_cycles_total
            assert serial.icache_hit_rate == merged.icache_hit_rate
            assert serial.dcache_hit_rate == merged.dcache_hit_rate
            assert serial.rocc_commands == merged.rocc_commands


class TestEndToEndSmoke:
    @pytest.mark.parametrize("name", sorted(EXPECTED_BUILTINS))
    def test_cycle_accurate_run_per_workload(self, name):
        """Each built-in runs the full pipeline: build + spike verification
        against the golden model + Rocket cycle measurement."""
        solution = standard_solutions()[SolutionKind.METHOD1]
        workload = get_workload(name)
        operation = workload.operations[0]
        vectors = workload_vectors(workload, 6, seed=7, operation=operation)
        outcome = run_solution_shard(
            solution, vectors, seed=7, workload=name, operation=operation
        )
        report = outcome.shard_report
        assert report.verified and report.check_failed == 0
        assert len(report.raw_cycle_samples) == 6
        assert all(count > 0 for count in report.raw_cycle_samples)
        assert report.rocc_commands > 0


class TestWorkloadCampaigns:
    @pytest.fixture(scope="class")
    def result(self):
        return run_workload_campaign(
            ["telco-billing", "carry-stress"],
            num_samples=8,
            kinds=(SolutionKind.METHOD1, SolutionKind.SOFTWARE),
            seed=5,
        )

    def test_cell_grid(self, result):
        assert len(result.cells) == 4
        assert result.workloads == ("telco-billing", "carry-stress")
        labels = [cell.label for cell in result.cells]
        assert "method1 @ telco-billing" in labels

    def test_table_iv_by_workload(self, result):
        tables = result.table_iv_by_workload()
        assert set(tables) == {"telco-billing", "carry-stress"}
        for table in tables.values():
            assert set(table.reports) == {
                SolutionKind.METHOD1, SolutionKind.SOFTWARE
            }
            speedup = table.speedups()[SolutionKind.METHOD1]
            assert speedup and speedup > 1.0

    def test_table_iv_rejects_multi_workload(self, result):
        with pytest.raises(ConfigurationError, match="table_iv_by_workload"):
            result.table_iv()

    def test_rendering(self, result):
        tables_text = render_workload_tables(result)
        assert "Workload: telco-billing" in tables_text
        assert "Workload: carry-stress" in tables_text
        matrix = render_workload_matrix(result)
        assert "Cross-workload comparison" in matrix
        assert "telco-billing" in matrix and "carry-stress" in matrix

    def test_summary_records_workload(self, result):
        summary = result.to_summary()
        assert summary["cells"][0]["workload"] == "telco-billing"
        assert summary["cells"][-1]["workload"] == "carry-stress"

    def test_workload_cells_requires_a_workload(self):
        with pytest.raises(ConfigurationError):
            workload_cells([])

    def test_report_for_workload(self, result):
        telco = result.report_for(SolutionKind.METHOD1, "telco-billing")
        carry = result.report_for(SolutionKind.METHOD1, "carry-stress")
        assert telco is not carry
        # Without a workload the lookup is ambiguous here — refuse rather
        # than silently return the first workload's report.
        with pytest.raises(ConfigurationError, match="several workloads"):
            result.report_for(SolutionKind.METHOD1)
        with pytest.raises(ConfigurationError, match="no campaign cell"):
            result.report_for(SolutionKind.METHOD1, "sparse-digits")

    def test_pareto_sweep_uses_framework_workload(self):
        """evaluate_sweep must measure the framework's workload vectors,
        not silently fall back to the legacy class mix."""
        from repro.core.pareto import ParetoAnalyzer

        framework = EvaluationFramework(num_samples=6, seed=3,
                                        workload="carry-stress")
        analyzer = ParetoAnalyzer(framework)
        solution = framework.solutions[SolutionKind.SOFTWARE]
        serial_point = analyzer.evaluate_solution(solution)
        sweep_point = analyzer.evaluate_sweep([solution])[0]
        assert serial_point.avg_cycles == sweep_point.avg_cycles

    def test_spawn_workers_with_runtime_registered_workload(self):
        """Spawn-started workers never see a workload registered at runtime
        in the parent; the campaign must still run because only the
        parent-generated vectors (plus the name as provenance) reach them."""
        from repro.core.campaign import run_campaign
        from repro.decnumber.number import DecNumber

        class RuntimeOnly(Workload):
            name = "runtime-only-workload"
            description = "registered after interpreter start"

            def pair(self, rng, index):
                return (DecNumber(0, rng.randint(1, 999), 0),
                        DecNumber(0, rng.randint(1, 999), 0))

        try:
            register(RuntimeOnly())
            cells = [CampaignCell(
                solution=standard_solutions()[SolutionKind.SOFTWARE],
                num_samples=4, seed=2, workload="runtime-only-workload",
            )]
            result = run_campaign(cells, workers=2, shards_per_cell=2,
                                  mp_start_method="spawn")
        finally:
            unregister("runtime-only-workload")
        assert result.reports[0].num_samples == 4
        assert result.reports[0].verification_failures == 0


class TestCampaignCli:
    def test_list_workloads(self, capsys):
        from repro.campaign import main

        assert main(["--list-workloads"]) == 0
        output = capsys.readouterr().out
        for name in EXPECTED_BUILTINS:
            assert name in output

    def test_multi_workload_run(self, capsys):
        from repro.campaign import main

        code = main([
            "--samples", "6", "--workers", "1",
            "--workload", "telco-billing,special-values",
            "--kinds", "method1,software",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Workload: telco-billing" in output
        assert "Cross-workload comparison" in output

    def test_single_workload_renders_title_without_paper_rows(self, capsys):
        from repro.campaign import main

        assert main(["--samples", "5", "--workers", "1",
                     "--workload", "telco-billing",
                     "--kinds", "method1,software"]) == 0
        output = capsys.readouterr().out
        assert "Workload: telco-billing" in output
        assert "(paper)" not in output  # published rows are for the paper mix

    def test_unknown_workload_rejected_with_suggestion(self, capsys):
        from repro.campaign import main

        with pytest.raises(SystemExit):
            main(["--workload", "telco-biling"])
        err = capsys.readouterr().err
        assert "unknown workload" in err and "telco-billing" in err

    def test_duplicate_workloads_rejected_upfront(self, capsys):
        from repro.campaign import main

        with pytest.raises(SystemExit):
            main(["--workload", "telco-billing,telco-billing"])
        assert "duplicate workload" in capsys.readouterr().err

    def test_empty_workload_value_rejected(self, capsys):
        from repro.campaign import main

        with pytest.raises(SystemExit):
            main(["--workload", ","])
        assert "at least one workload" in capsys.readouterr().err

    def test_classes_and_workload_mutually_exclusive(self, capsys):
        from repro.campaign import main

        with pytest.raises(SystemExit):
            main(["--workload", "paper-uniform", "--classes", "normal"])
        assert "mutually exclusive" in capsys.readouterr().err
