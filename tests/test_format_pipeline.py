"""End-to-end tests of the format-generic decimal pipeline (decimal128).

The decimal64 pipeline is pinned by the rest of the suite; these tests prove
the same layers — kernels, accelerator, testgen harness, database,
workloads, campaign engine, CLI and reporting — generalise to decimal128
through the :class:`~repro.decnumber.formats.FormatSpec` axis.
"""

from __future__ import annotations

import pytest

from repro.core.campaign import CampaignCell, format_cells, run_campaign
from repro.core.solution import CoDesignSolution, standard_solutions
from repro.decnumber.formats import DECIMAL128, get_format, resolve_format_name
from repro.decnumber.number import DecNumber
from repro.errors import AcceleratorError, ConfigurationError, DecimalError
from repro.rocc.decimal_accel import (
    ACC_WORD_SELECTORS,
    DecimalAccelerator,
    DecimalAcceleratorConfig,
    acc_word_selector,
    regfile_word_selector,
)
from repro.sim.spike import SpikeSimulator
from repro.testgen.config import SolutionKind, TestProgramConfig
from repro.testgen.generator import build_test_program, draw_vectors
from repro.verification.checker import ResultChecker
from repro.verification.database import (
    OperandClass,
    VerificationDatabase,
    VerificationVector,
)
from repro.verification.reference import GoldenReference


def _check_kernel(kind, vectors, fmt="decimal128"):
    config = TestProgramConfig(
        solution=kind,
        precision=TestProgramConfig.precision_for_format(fmt),
        num_samples=len(vectors),
    )
    program = build_test_program(config, vectors=vectors)
    solution = standard_solutions()[kind]
    result = SpikeSimulator(
        program.image, accelerator=solution.make_accelerator(fmt)
    ).run()
    assert result.exit_code == 0
    report = ResultChecker(GoldenReference(precision=fmt)).check_run(
        vectors, program.read_results(result)
    )
    detail = "\n".join(f.describe() for f in report.failures[:5])
    assert report.all_passed, f"{kind}: {report.failed} mismatches\n{detail}"
    return program, result


VERIFIABLE = [SolutionKind.SOFTWARE, SolutionKind.METHOD1]


# ----------------------------------------------------------------- kernels
class TestDecimal128Kernels:
    @pytest.mark.parametrize("solution", VERIFIABLE)
    @pytest.mark.parametrize("operand_class", OperandClass.ALL)
    def test_class_correctness(self, solution, operand_class):
        database = VerificationDatabase(
            seed=hash((solution, operand_class)) & 0xFFFF, fmt="decimal128"
        )
        vectors = database.generate(operand_class, 6)
        _check_kernel(solution, vectors)

    @pytest.mark.parametrize("solution", VERIFIABLE)
    def test_directed_edges(self, solution):
        nines = "9" * 34
        pairs = [
            ("1", "1"),
            ("0", "123.45"),
            ("-0", "7E+6000"),
            (nines, nines),                                  # maximal carry
            (f"{nines}E+6111", "10"),                        # overflow to inf
            ("1E-6176", "1E-10"),                            # underflow to zero
            ("5E-6176", "0.1"),                              # half ulp tie
            ("15E-6176", "0.1"),                             # subnormal round up
            ("123456789E-6176", "0.001"),                    # subnormal digits
            ("7E+6000", "8E+140"),                           # fold-down clamp
            ("2", "3E+6110"),                                # clamp by one digit
            ("1000000000000000000000000000000005", "1" + "0" * 31),
            ("1000000000000000000000000000000015", "1" + "0" * 31),
            ("Infinity", "-2"),
            ("-Infinity", "-Infinity"),
            ("Infinity", "0"),
            ("NaN123", "5"),
            ("sNaN7", "Infinity"),
            ("0E+1000", "0E-2000"),
        ]
        vectors = [
            VerificationVector(
                DecNumber.from_string(x), DecNumber.from_string(y),
                "directed", index,
            )
            for index, (x, y) in enumerate(pairs)
        ]
        _check_kernel(solution, vectors)

    def test_dummy_variant_runs_but_is_not_verifiable(self):
        vectors = VerificationDatabase(seed=3, fmt="decimal128").generate_mix(12)
        config = TestProgramConfig(
            solution=SolutionKind.METHOD1_DUMMY, precision="quad",
            num_samples=len(vectors),
        )
        program = build_test_program(config, vectors=vectors)
        result = SpikeSimulator(program.image).run()
        assert result.exit_code == 0
        report = ResultChecker(GoldenReference(precision="quad")).check_run(
            vectors, program.read_results(result)
        )
        assert report.total == 12
        assert report.failed > 0       # fixed-return dummies: timing only

    def test_two_word_results_read_back(self):
        vectors = VerificationDatabase(seed=9, fmt="decimal128").generate_mix(5)
        program, result = _check_kernel(SolutionKind.SOFTWARE, vectors)
        assert program.words_per_value == 2
        words = program.read_results(result)
        assert len(words) == 5
        assert any(word >> 64 for word in words)  # high words are real
        cycles = program.read_cycle_samples(result)
        assert len(cycles) == 5
        assert sum(cycles) == program.read_total_cycles(result)


# ------------------------------------------------------------- accelerator
class TestWideAccelerator:
    def test_for_format_decimal64_is_the_historic_default(self):
        assert DecimalAcceleratorConfig.for_format("decimal64") == (
            DecimalAcceleratorConfig()
        )

    def test_for_format_decimal128_scales_datapath(self):
        config = DecimalAcceleratorConfig.for_format("decimal128")
        assert config.digits == 34
        assert config.accumulator_digits == 68
        assert config.register_width_digits == 38
        assert config.accumulator_words == 5
        assert config.register_words == 3
        small = DecimalAcceleratorConfig().area_report()
        large = config.area_report()
        assert large.total_gate_equivalents > small.total_gate_equivalents
        assert large.total_flip_flops > small.total_flip_flops

    def test_format_scaled_validation(self):
        with pytest.raises(AcceleratorError):
            DecimalAcceleratorConfig(digits=34, register_width_digits=34,
                                     accumulator_digits=68)
        with pytest.raises(AcceleratorError):
            DecimalAcceleratorConfig(digits=34, register_width_digits=38,
                                     accumulator_digits=64)

    def test_lane_writes_and_word_reads(self):
        accel = DecimalAccelerator(DecimalAcceleratorConfig.for_format("decimal128"))
        lanes = (0x1111, 0x2222, 0x3333)
        from repro.isa.rocc import DecimalFunct
        from repro.rocc.interface import RoccCommand

        def command(**kwargs):
            base = dict(funct7=DecimalFunct.WR, rd=0, rs1=0, rs2=0,
                        rs1_value=0, rs2_value=0, xd=False, xs1=False,
                        xs2=False)
            base.update(kwargs)
            return RoccCommand(**base)

        for lane, value in enumerate(lanes):
            accel.execute_command(
                command(rd=lane, rs1_value=value, rs2=4, xs1=True), None
            )
        expected = lanes[0] | (lanes[1] << 64) | (lanes[2] << 128)
        assert accel.regfile.read(4) == expected
        # Lane-0 write replaces the whole register (decimal64 semantics).
        accel.execute_command(command(rd=0, rs1_value=0x9, rs2=4, xs1=True), None)
        assert accel.regfile.read(4) == 0x9
        # Register-file word lanes read back through value selectors.
        accel.regfile.write(4, expected)
        for lane, value in enumerate(lanes):
            result = accel.execute_command(
                command(funct7=DecimalFunct.RD, rd=1, xd=True, xs2=True,
                        rs2_value=regfile_word_selector(4, lane)), None
            )
            assert result.value == value

    def test_accumulator_word_selectors(self):
        accel = DecimalAccelerator(DecimalAcceleratorConfig.for_format("decimal128"))
        accel.accumulator = int("9" * 68, 16)  # 272 bits of nibbles
        from repro.isa.rocc import DecimalFunct
        from repro.rocc.interface import RoccCommand

        for word in range(5):
            selector = acc_word_selector(word)
            result = accel.execute_command(
                RoccCommand(funct7=DecimalFunct.RD, rd=1, rs1=0, rs2=selector,
                            rs1_value=0, rs2_value=0, xd=True, xs1=False,
                            xs2=False),
                None,
            )
            assert result.value == (accel.accumulator >> (64 * word)) & (
                (1 << 64) - 1
            )
        assert ACC_WORD_SELECTORS[0] == 16 and ACC_WORD_SELECTORS[1] == 17
        with pytest.raises(AcceleratorError):
            acc_word_selector(len(ACC_WORD_SELECTORS))


# ------------------------------------------------------ solutions (satellite)
class TestSolutionOverhead:
    def test_hardware_overhead_does_not_instantiate_accelerator(self, monkeypatch):
        def boom(self, *args, **kwargs):
            raise AssertionError("hardware_overhead built a full accelerator")

        monkeypatch.setattr(DecimalAccelerator, "__init__", boom)
        solution = standard_solutions()[SolutionKind.METHOD1]
        report = solution.hardware_overhead()
        assert report.total_gate_equivalents > 0

    def test_overhead_matches_live_accelerator_report(self):
        solution = standard_solutions()[SolutionKind.METHOD1]
        for fmt in ("decimal64", "decimal128"):
            from_config = solution.hardware_overhead(fmt)
            live = solution.make_accelerator(fmt).area_report()
            assert [
                (c.name, c.gate_equivalents, c.flip_flops)
                for c in from_config.components
            ] == [
                (c.name, c.gate_equivalents, c.flip_flops)
                for c in live.components
            ]

    def test_pinned_narrow_config_rejected_for_wide_format(self):
        pinned = CoDesignSolution(
            name="narrow", kind=SolutionKind.METHOD1, uses_accelerator=True,
            accelerator_config=DecimalAcceleratorConfig(),
        )
        assert pinned.make_accelerator("decimal64") is not None
        with pytest.raises(ConfigurationError, match="too narrow"):
            pinned.make_accelerator("decimal128")
        with pytest.raises(ConfigurationError, match="too narrow"):
            pinned.hardware_overhead("decimal128")

    def test_accelerator_config_default_is_typed_optional(self):
        import typing

        hints = typing.get_type_hints(CoDesignSolution)
        assert hints["accelerator_config"] == typing.Optional[
            DecimalAcceleratorConfig
        ]
        software = standard_solutions()[SolutionKind.SOFTWARE]
        assert software.hardware_overhead() is None
        assert software.make_accelerator("decimal128") is None


# ------------------------------------------------------- database + workloads
class TestFormatDistributions:
    def test_decimal128_class_semantics(self):
        reference = GoldenReference(precision="decimal128")
        database = VerificationDatabase(seed=61, fmt="decimal128")
        for vector in database.generate(OperandClass.OVERFLOW, 40):
            assert "overflow" in reference.compute(vector.x, vector.y).flags
        subnormal = zero = 0
        for vector in database.generate(OperandClass.UNDERFLOW, 40):
            golden = reference.compute(vector.x, vector.y)
            assert "underflow" in golden.flags
            if golden.value.is_zero:
                zero += 1
            elif "subnormal" in golden.flags:
                subnormal += 1
        assert subnormal >= 13 and zero >= 13
        for vector in database.generate(OperandClass.CLAMPING, 40):
            flags = reference.compute(vector.x, vector.y).flags
            assert "clamped" in flags and "overflow" not in flags

    def test_all_decimal128_operands_encode_exactly(self):
        reference = GoldenReference(precision="decimal128")
        database = VerificationDatabase(seed=62, fmt="decimal128")
        for vector in database.generate_mix(120, OperandClass.ALL):
            for operand in (vector.x, vector.y):
                decoded = reference.decode(reference.encode_operand(operand))
                if operand.is_finite:
                    assert (decoded.sign, decoded.coefficient,
                            decoded.exponent) == (
                        operand.sign, operand.coefficient, operand.exponent,
                    )
                else:
                    assert decoded.kind == operand.kind

    def test_unknown_format_rejected(self):
        with pytest.raises(DecimalError, match="decimal32"):
            VerificationDatabase(seed=1, fmt="decimal32")
        assert resolve_format_name("quad") == "decimal128"
        assert get_format("double").name == "decimal64"

    def test_workload_format_gating(self):
        from repro.workloads import Workload, get_workload, workload_vectors

        class LegacyOnly(Workload):
            name = "legacy-only-test"

            def pair(self, rng, index):
                return DecNumber(0, 1, 0), DecNumber(0, 2, 0)

        legacy = LegacyOnly()
        assert legacy.formats == ("decimal64",)
        assert workload_vectors(legacy, 3, 1, "decimal64")
        with pytest.raises(ConfigurationError, match="does not support"):
            workload_vectors(legacy, 3, 1, "decimal128")
        for name in ("paper-uniform", "carry-stress", "special-values"):
            workload = get_workload(name)
            assert workload.supports_format("decimal128")

    def test_carry_stress_scales_digits_with_format(self):
        from repro.workloads import get_workload

        workload = get_workload("carry-stress")
        wide = workload.vectors(64, seed=5, fmt="decimal128")
        assert max(v.x.digits for v in wide) > 16
        assert all(
            str(v.x.coefficient).strip("9") == "" for v in wide
        )
        narrow = workload.vectors(64, seed=5)
        assert max(v.x.digits for v in narrow) <= 16

    def test_draw_vectors_format_threading(self):
        default = draw_vectors(10, 2018)
        wide = draw_vectors(10, 2018, fmt="decimal128")
        assert [v.operand_class for v in default] == [
            v.operand_class for v in wide
        ]
        assert [(v.x, v.y) for v in default] != [(v.x, v.y) for v in wide]


# --------------------------------------------------------- campaign + CLI
class TestFormatCampaign:
    def test_cell_label_and_validation(self):
        solution = standard_solutions()[SolutionKind.METHOD1]
        cell = CampaignCell(solution=solution, num_samples=4, fmt="quad")
        assert cell.fmt == "decimal128"
        assert "[decimal128]" in cell.label
        # Config-layer classes keep the ConfigurationError contract even
        # though the format registry itself raises DecimalError.
        with pytest.raises(ConfigurationError):
            CampaignCell(solution=solution, num_samples=4, fmt="decimal999")

    def test_cell_rejects_unsupported_workload_format(self):
        from repro.workloads import Workload, register, unregister

        class D64Only(Workload):
            name = "d64-only-cell-test"

            def pair(self, rng, index):
                return DecNumber(0, 1, 0), DecNumber(0, 2, 0)

        register(D64Only(), replace=True)
        try:
            solution = standard_solutions()[SolutionKind.METHOD1]
            with pytest.raises(ConfigurationError, match="does not support"):
                CampaignCell(solution=solution, num_samples=4,
                             workload="d64-only-cell-test", fmt="decimal128")
        finally:
            unregister("d64-only-cell-test")

    def test_format_cells_grid_and_run(self):
        cells = format_cells(
            ["decimal64", "decimal128"], num_samples=4,
            kinds=(SolutionKind.METHOD1, SolutionKind.SOFTWARE),
        )
        assert len(cells) == 4
        assert {cell.fmt for cell in cells} == {"decimal64", "decimal128"}
        result = run_campaign(cells, workers=1)
        assert result.formats == ("decimal64", "decimal128")
        grouped = result.table_iv_grouped()
        assert set(grouped) == {("decimal64", None), ("decimal128", None)}
        for table in grouped.values():
            speedup = table.speedups()[SolutionKind.METHOD1]
            assert speedup and speedup > 1.0
        with pytest.raises(ConfigurationError, match="formats"):
            result.table_iv_by_workload()
        with pytest.raises(ConfigurationError, match="formats"):
            result.report_for(SolutionKind.METHOD1)
        report = result.report_for(SolutionKind.METHOD1, fmt="decimal128")
        assert report.fmt == "decimal128"
        summary = result.to_summary()
        assert {cell["fmt"] for cell in summary["cells"]} == {
            "decimal64", "decimal128"
        }

    def test_differential_format_cell_is_clean(self):
        cells = format_cells(
            ["decimal128"], num_samples=4, kinds=(SolutionKind.METHOD1,),
            workloads=["carry-stress"], differential=True,
        )
        result = run_campaign(cells, workers=1)
        assert result.differential
        assert result.differential_clean
        assert result.reports[0].models == ("spike", "rocket", "gem5")

    def test_format_cells_skips_incompatible_workloads(self):
        from repro.workloads import Workload, register, unregister

        class D64Grid(Workload):
            name = "d64-grid-test"

            def pair(self, rng, index):
                return DecNumber(0, 3, 0), DecNumber(0, 4, 0)

        register(D64Grid(), replace=True)
        try:
            cells = format_cells(
                ["decimal64", "decimal128"], num_samples=4,
                kinds=(SolutionKind.METHOD1,),
                workloads=["d64-grid-test", "carry-stress"],
            )
            labels = [cell.label for cell in cells]
            assert len(cells) == 3  # d64 x 2 workloads + d128 x carry-stress
            assert not any(
                "d64-grid-test" in label and "decimal128" in label
                for label in labels
            )
            with pytest.raises(ConfigurationError, match="supports none"):
                format_cells(["decimal128"], num_samples=4,
                             workloads=["d64-grid-test"])
        finally:
            unregister("d64-grid-test")

    def test_cli_format_parsing_and_rendering(self, capsys):
        from repro.campaign import main

        assert main([
            "--samples", "4", "--workers", "1",
            "--format", "decimal64,decimal128",
            "--kinds", "method1,software",
        ]) == 0
        out = capsys.readouterr().out
        assert "Format: decimal64" in out
        assert "Format: decimal128" in out
        assert "Cross-format comparison" in out
        # Paper reference rows only belong next to the paper's experiment.
        d64_block, d128_block = out.split("Format: decimal128")
        assert "(paper)" in d64_block
        assert "(paper)" not in d128_block.split("Cross-format")[0]

    def test_cli_rejects_bad_formats(self):
        from repro.campaign import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--format", "decimal32"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--format", "decimal64,decimal64"])


# ------------------------------------------------------------------- fuzz
class TestFormatFuzz:
    def test_fuzz_config_resolves_aliases(self):
        from repro.fuzz.engine import FuzzConfig

        assert FuzzConfig(fmt="quad").fmt == "decimal128"
        with pytest.raises(ConfigurationError):
            FuzzConfig(fmt="decimal32")

    def test_mutators_stay_in_format_envelope(self):
        import random as _random

        from repro.fuzz.mutate import mutators_for_format

        spec = DECIMAL128
        rng = _random.Random(5)
        x = DecNumber(0, 123456, -10)
        y = DecNumber(1, 987, 20)
        for mutator in mutators_for_format("decimal128"):
            for _ in range(40):
                x, y = mutator(rng, x, y)
                for operand in (x, y):
                    if operand.is_finite:
                        assert operand.coefficient <= spec.max_coefficient
                        assert spec.etiny <= operand.exponent <= spec.etop
                    elif operand.is_nan:
                        assert operand.coefficient <= spec.max_payload

    def test_decimal128_fuzz_campaign_smoke(self):
        from repro.fuzz.engine import FuzzCampaign, FuzzConfig

        report = FuzzCampaign(FuzzConfig(
            seed=11, budget=24, batch_size=12, fmt="decimal128",
            models=("spike", "rocket"),
        )).run()
        assert report.ok, report.describe()
        assert report.vectors_run == 24
        assert "decimal128" in report.describe()
        assert report.to_summary()["fmt"] == "decimal128"
