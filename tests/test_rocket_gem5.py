"""Tests for the timing models: Rocket-like emulator, caches, Gem5 atomic CPU."""

import pytest

from repro.asm.builder import AsmBuilder
from repro.asm.program import TOHOST_ADDRESS
from repro.errors import ConfigurationError
from repro.gem5.atomic_cpu import AtomicSimpleCPU
from repro.gem5.se_mode import Gem5Config, SyscallEmulationRunner
from repro.rocc.decimal_accel import DecimalAccelerator
from repro.rocket.cache import Cache
from repro.rocket.config import CacheConfig, RocketConfig
from repro.rocket.core import RocketEmulator


def _program(body):
    """Small program ending with an HTIF exit."""
    builder = AsmBuilder()
    builder.data()
    builder.label("out")
    builder.dword(0, 0, 0, 0)
    builder.text()
    builder.label("_start")
    builder.la("a5", "out")
    body(builder)
    builder.li("t5", TOHOST_ADDRESS)
    builder.li("t6", 1)
    builder.emit("sd", "t6", "t5", 0)
    builder.label("spin")
    builder.j("spin")
    return builder.link()


def _loop_program(extra=None, iterations=200):
    def body(b):
        b.li("t0", 0)
        b.li("t1", iterations)
        b.label("loop")
        if extra is not None:
            extra(b)
        b.emit("addi", "t0", "t0", 1)
        b.branch("bne", "t0", "t1", "loop")

    return _program(body)


class TestCacheModel:
    def test_repeated_access_hits(self):
        cache = Cache(CacheConfig(sets=4, ways=2, line_bytes=16, miss_penalty_cycles=10))
        assert cache.access(0x100) == 10
        assert cache.access(0x104) == 0   # same line
        assert cache.access(0x100) == 0
        assert cache.stats.misses == 1 and cache.stats.hits == 2

    def test_eviction_with_random_replacement_is_seeded(self):
        import random

        def run(seed):
            cache = Cache(
                CacheConfig(sets=1, ways=2, line_bytes=16, miss_penalty_cycles=10),
                rng=random.Random(seed),
            )
            pattern = [0x000, 0x100, 0x200, 0x000, 0x100, 0x200] * 10
            return [cache.access(address) for address in pattern]

        assert run(1) == run(1)

    def test_lru_replacement(self):
        cache = Cache(
            CacheConfig(sets=1, ways=2, line_bytes=16, miss_penalty_cycles=10,
                        replacement="lru")
        )
        cache.access(0x000)
        cache.access(0x100)
        cache.access(0x000)        # 0x100 is now LRU
        cache.access(0x200)        # evicts 0x100
        assert cache.access(0x000) == 0
        assert cache.access(0x100) == 10

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(sets=3)
        with pytest.raises(ConfigurationError):
            CacheConfig(replacement="fifo")
        assert CacheConfig().size_bytes == 64 * 4 * 64


class TestRocketConfig:
    def test_overrides(self):
        config = RocketConfig().with_overrides(div_latency_cycles=10)
        assert config.div_latency_cycles == 10
        with pytest.raises(ConfigurationError):
            RocketConfig(branch_penalty_cycles=-1)


class TestRocketEmulator:
    def test_cycles_exceed_instructions(self):
        result = RocketEmulator(_loop_program()).run()
        assert result.exit_code == 0
        assert result.cycles > result.instructions_retired
        assert result.cycles == result.sw_cycles + result.hw_cycles
        assert result.hw_cycles == 0

    def test_deterministic_given_seed(self):
        image = _loop_program()
        first = RocketEmulator(image, config=RocketConfig(seed=5)).run()
        second = RocketEmulator(image, config=RocketConfig(seed=5)).run()
        assert first.cycles == second.cycles

    def test_division_latency_visible(self):
        def divide(b):
            b.emit("divu", "t2", "t1", "t1")

        fast = RocketEmulator(
            _loop_program(divide), config=RocketConfig(div_latency_cycles=2)
        ).run()
        slow = RocketEmulator(
            _loop_program(divide), config=RocketConfig(div_latency_cycles=40)
        ).run()
        assert slow.cycles > fast.cycles + 150 * 30

    def test_branch_penalty_visible(self):
        cheap = RocketEmulator(
            _loop_program(), config=RocketConfig(branch_penalty_cycles=0)
        ).run()
        costly = RocketEmulator(
            _loop_program(), config=RocketConfig(branch_penalty_cycles=3)
        ).run()
        assert costly.cycles > cheap.cycles

    def test_load_use_stall(self):
        def loaduse(b):
            b.emit("ld", "t2", "a5", 0)
            b.emit("addi", "t3", "t2", 1)   # immediately dependent

        def loadfar(b):
            b.emit("ld", "t2", "a5", 0)
            b.emit("addi", "t4", "t1", 1)   # independent

        dependent = RocketEmulator(_loop_program(loaduse)).run()
        independent = RocketEmulator(_loop_program(loadfar)).run()
        assert dependent.cycles > independent.cycles

    def test_rdcycle_reads_model_cycles(self):
        def body(b):
            b.rdcycle("t0")
            b.emit("divu", "t2", "t0", "t0")
            b.rdcycle("t1")
            b.emit("sub", "t2", "t1", "t0")
            b.emit("sd", "t2", "a5", 0)

        result = RocketEmulator(_program(body), config=RocketConfig(div_latency_cycles=30)).run()
        assert result.read_dword("out") >= 30

    def test_rocc_cycles_attributed_to_hw(self):
        def body(b):
            b.rocc("CLR_ALL")
            b.li("t0", 0x123)
            b.rocc("WR", rd=0, rs1="t0", rs2=1, xd=False, xs1=True, xs2=False)
            b.rocc("RD", rd="t1", rs1=0, rs2=1, xd=True, xs1=False, xs2=False)
            b.emit("sd", "t1", "a5", 0)

        result = RocketEmulator(_program(body), accelerator=DecimalAccelerator()).run()
        assert result.read_dword("out") == 0x123
        assert result.rocc_commands == 3
        assert result.hw_cycles > 0
        assert result.cycles_per_instruction > 1.0

    def test_seconds_conversion(self):
        result = RocketEmulator(_loop_program()).run()
        assert result.seconds(1_000_000_000) == pytest.approx(result.cycles / 1e9)


class TestGem5Atomic:
    def test_one_cycle_per_instruction(self):
        image = _loop_program()
        result = AtomicSimpleCPU(image, frequency_hz=1_000_000).run()
        assert result.ticks == result.instructions_retired
        assert result.simulated_seconds == pytest.approx(result.ticks / 1e6)

    def test_memory_extra_cycles(self):
        def load(b):
            b.emit("ld", "t2", "a5", 0)

        image = _loop_program(load)
        plain = AtomicSimpleCPU(image).run()
        padded = AtomicSimpleCPU(image, memory_access_extra_cycles=2).run()
        assert padded.ticks > plain.ticks
        assert plain.instructions_retired == padded.instructions_retired

    def test_se_runner(self):
        runner = SyscallEmulationRunner(Gem5Config(frequency_hz=10 ** 9))
        result = runner.run_binary(_loop_program())
        assert result.exit_code == 0 and result.frequency_hz == 10 ** 9

    def test_se_runner_rejects_unknown_cpu(self):
        with pytest.raises(ConfigurationError):
            SyscallEmulationRunner(Gem5Config(cpu_type="O3CPU"))
