"""Staged-pipeline accelerator tests (docs/pipeline.md).

Three layers of guarantees:

* unit/property tests of :mod:`repro.rocc.pipeline` (segment splitting,
  issue-slot occupancy, transaction event times, statistics);
* lockstep equivalence — the ``pipeline_depth=1, issue_width=1`` staged
  model must be *bit-identical* (results, per-run cycle counters and the
  accelerator's busy-cycle totals) to the legacy blocking-FSM timing path
  (``pipelined=False``), across every Table II funct code and both
  interchange formats; deeper/wider configurations must keep values
  identical while cycle counts shrink monotonically;
* Pareto-frontier properties and the sweep plumbing behind
  ``python -m repro.campaign --pipeline-sweep``.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm.builder import AsmBuilder
from repro.asm.program import TOHOST_ADDRESS
from repro.core.campaign import pipeline_sweep_cells, run_pipeline_sweep_campaign
from repro.core.pareto import ParetoPoint, frontier_of, points_from_campaign
from repro.core.solution import microarchitecture_variants
from repro.decnumber.bcd import int_to_bcd
from repro.errors import AcceleratorError, ConfigurationError
from repro.isa.rocc import DecimalFunct, PIPELINE_STAGES, stage_plan
from repro.rocc.decimal_accel import (
    ACC_WORD_SELECTORS,
    STATUS_SELECTOR,
    DecimalAccelerator,
    DecimalAcceleratorConfig,
    acc_word_selector,
    regfile_word_selector,
)
from repro.rocc.fsm import FsmState, InterfaceFsm
from repro.rocc.interface import RoccCommand, RoccStatistics
from repro.rocc.pipeline import AcceleratorPipeline, split_busy_cycles
from repro.rocket.core import RocketEmulator
from repro.testgen.config import SolutionKind, TestProgramConfig
from repro.testgen.generator import build_test_program, draw_vectors

_PRECISION = {"decimal64": "double", "decimal128": "quad"}


def _command(funct7, rd=0, rs1=0, rs2=0, rs1_value=0, rs2_value=0,
             xd=False, xs1=False, xs2=False):
    return RoccCommand(funct7=funct7, rd=rd, rs1=rs1, rs2=rs2,
                       rs1_value=rs1_value, rs2_value=rs2_value,
                       xd=xd, xs1=xs1, xs2=xs2)


def _accelerator(fmt="decimal64", pipelined=True, depth=1, width=1,
                 **overrides):
    config = DecimalAcceleratorConfig.for_format(
        fmt, pipelined=pipelined, pipeline_depth=depth, issue_width=width,
        **overrides,
    )
    return DecimalAccelerator(config)


# ---------------------------------------------------------------------------
# split_busy_cycles
# ---------------------------------------------------------------------------
class TestSplitBusyCycles:
    @given(busy=st.integers(1, 500), depth=st.integers(1, 12))
    @settings(max_examples=200, deadline=None)
    def test_segments_conserve_the_datapath_work(self, busy, depth):
        segments = split_busy_cycles(busy, depth)
        assert sum(segments) == busy
        assert len(segments) == min(depth, busy)
        assert all(segment >= 1 for segment in segments)
        # Longest first: segment 0 is the initiation interval, ceil(busy/n).
        assert segments[0] == -(-busy // len(segments))
        assert list(segments) == sorted(segments, reverse=True)
        # Balanced: no stage more than one cycle longer than another.
        assert segments[0] - segments[-1] <= 1

    @given(busy=st.integers(1, 300), depth=st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_initiation_interval_never_grows_with_depth(self, busy, depth):
        assert (split_busy_cycles(busy, depth + 1)[0]
                <= split_busy_cycles(busy, depth)[0])

    def test_depth_one_is_the_blocking_datapath(self):
        assert split_busy_cycles(7, 1) == (7,)
        assert split_busy_cycles(1, 8) == (1,)

    def test_rejects_nonpositive_inputs(self):
        for busy, depth in ((0, 1), (-3, 2), (1, 0), (4, -1)):
            with pytest.raises(AcceleratorError):
                split_busy_cycles(busy, depth)


# ---------------------------------------------------------------------------
# AcceleratorPipeline occupancy model
# ---------------------------------------------------------------------------
class TestAcceleratorPipeline:
    def test_validates_shape(self):
        with pytest.raises(AcceleratorError):
            AcceleratorPipeline(depth=0)
        with pytest.raises(AcceleratorError):
            AcceleratorPipeline(width=0)

    def test_depth_one_blocks_back_to_back_commands(self):
        pipe = AcceleratorPipeline(depth=1, width=1)
        first = pipe.issue(10, 5, False, DecimalFunct.DEC_ADD)
        assert (first.accept, first.complete, first.next_issue) == (10, 15, 15)
        assert first.release == first.next_issue == first.complete
        assert first.stall_cycles == 0
        # Arrives while the slot is busy: stalls until the first frees it.
        second = pipe.issue(12, 3, False, DecimalFunct.DEC_ADD)
        assert second.accept == 15 and second.stall_cycles == 3
        assert pipe.stall_cycles == 3 and pipe.transactions == 2

    def test_deeper_pipeline_overlaps_after_the_initiation_interval(self):
        pipe = AcceleratorPipeline(depth=4, width=1)
        first = pipe.issue(0, 8, False, DecimalFunct.DEC_ACCUM)
        assert first.segments == (2, 2, 2, 2)
        assert first.next_issue == 2 and first.complete == 8
        second = pipe.issue(1, 8, False, DecimalFunct.DEC_ACCUM)
        assert second.accept == 2 and second.stall_cycles == 1
        # Both were still in the stages when the second was accepted.
        assert pipe.peak_in_flight == 2
        # Non-responding commands release the core at the initiation interval.
        assert pipe.overlap_cycles == (first.complete - first.next_issue) + (
            second.complete - second.next_issue
        )

    def test_wider_issue_accepts_simultaneous_arrivals(self):
        pipe = AcceleratorPipeline(depth=1, width=2)
        a = pipe.issue(5, 4, False, DecimalFunct.WR)
        b = pipe.issue(5, 4, False, DecimalFunct.WR)
        assert a.accept == b.accept == 5
        assert pipe.stall_cycles == 0
        c = pipe.issue(6, 4, False, DecimalFunct.WR)
        assert c.accept == 9  # both slots busy until cycle 9

    def test_responding_commands_hold_the_core_to_completion(self):
        pipe = AcceleratorPipeline(depth=4, width=1)
        txn = pipe.issue(0, 8, True, DecimalFunct.RD)
        assert txn.release == txn.complete == 8
        assert pipe.overlap_cycles == 0

    def test_stage_names_follow_the_function_plan(self):
        pipe = AcceleratorPipeline(depth=3, width=1)
        mul = pipe.issue(0, 9, False, DecimalFunct.DEC_MUL)
        assert mul.stage_names == ("multiplicand-gen", "pp-accumulate", "round")
        add = pipe.issue(0, 6, True, DecimalFunct.DEC_ADDSUB)
        assert add.stage_names == ("align", "effective-op", "round")
        # Interface-only commands have a single logical stage.
        wr = AcceleratorPipeline(depth=1).issue(0, 1, False, DecimalFunct.WR)
        assert wr.stage_names == ("interface",)
        # More physical segments than logical stages: extras are numbered.
        deep = AcceleratorPipeline(depth=5).issue(0, 10, False, DecimalFunct.DEC_MUL)
        assert deep.stage_names == (
            "multiplicand-gen", "pp-accumulate", "round", "round+1", "round+2",
        )

    def test_stage_plan_covers_the_datapath_functions(self):
        for name in ("DEC_MUL", "DEC_ACCUM"):
            assert PIPELINE_STAGES[name][0] == "multiplicand-gen"
        for name in ("DEC_ADDSUB", "DEC_FMA_ACC", "DEC_ADDC", "DEC_SUBB"):
            assert PIPELINE_STAGES[name][0] == "align"
        assert stage_plan(DecimalFunct.RD) == ("interface",)
        assert stage_plan("DEC_MUL") == PIPELINE_STAGES["DEC_MUL"]

    def test_statistics_and_reset(self):
        pipe = AcceleratorPipeline(depth=2, width=2)
        pipe.issue(0, 6, False, DecimalFunct.DEC_MUL)
        pipe.issue(1, 6, True, DecimalFunct.DEC_ACCUM)
        assert pipe.transactions == 2
        assert pipe.function_counts["DEC_MUL"] == 1
        assert pipe.in_flight == 2 and pipe.peak_in_flight == 2
        pipe.reset()
        assert pipe.transactions == pipe.retired == 0
        assert pipe.stall_cycles == pipe.overlap_cycles == 0
        assert pipe.in_flight == 0 and pipe.peak_in_flight == 0
        assert not pipe.function_counts
        # A fresh command is accepted at its arrival again.
        assert pipe.issue(0, 4, False, DecimalFunct.WR).accept == 0

    @given(
        depth=st.integers(1, 6),
        width=st.integers(1, 3),
        commands=st.lists(
            st.tuples(st.integers(0, 4), st.integers(1, 20), st.booleans()),
            min_size=1, max_size=20,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_event_time_invariants(self, depth, width, commands):
        pipe = AcceleratorPipeline(depth=depth, width=width)
        arrival = 0
        for gap, busy, responds in commands:
            arrival += gap
            txn = pipe.issue(arrival, busy, responds, DecimalFunct.DEC_ADD)
            assert txn.accept >= txn.arrival == arrival
            assert txn.complete == txn.accept + busy
            assert txn.next_issue == txn.accept + txn.segments[0]
            assert txn.next_issue <= txn.complete
            assert txn.release in (txn.complete, txn.next_issue)
            arrival = txn.arrival
        assert pipe.retired + pipe.in_flight == pipe.transactions


# ---------------------------------------------------------------------------
# Interface FSM error path (regression: previously untested)
# ---------------------------------------------------------------------------
class TestFsmBusyCollision:
    def test_command_while_busy_raises_and_preserves_state(self):
        fsm = InterfaceFsm()
        fsm._go(FsmState.DEC_MUL)  # freeze the FSM mid-command
        cycles_before = fsm.cycles
        with pytest.raises(AcceleratorError, match="while the FSM was busy"):
            fsm.run_command(FsmState.DEC_ADD, respond=False)
        # The rejected command must not have advanced the machine.
        assert fsm.state == FsmState.DEC_MUL
        assert fsm.cycles == cycles_before

    def test_illegal_transition_is_rejected(self):
        fsm = InterfaceFsm()
        with pytest.raises(AcceleratorError, match="illegal FSM transition"):
            fsm._go(FsmState.READ_RESP)  # no Idle -> Read Resp edge in Fig. 5


# ---------------------------------------------------------------------------
# Statistics reset (regression: counters survived accelerator.reset())
# ---------------------------------------------------------------------------
class TestStatisticsReset:
    def test_rocc_statistics_value_object(self):
        stats = RoccStatistics(commands_executed=3, busy_cycles_total=9,
                               responses_sent=1)
        stats.reset()
        assert stats == RoccStatistics()

    def test_reset_clears_every_counter(self, accelerator):
        accelerator.execute(
            funct7=DecimalFunct.WR, rd=0, rs1=0, rs2=1,
            rs1_value=int_to_bcd(42), rs2_value=0,
            xd=False, xs1=True, xs2=False, memory=None,
        )
        accelerator.execute(
            funct7=DecimalFunct.RD, rd=0, rs1=0, rs2=1, rs1_value=0,
            rs2_value=0, xd=True, xs1=False, xs2=False, memory=None,
        )
        accelerator.pipeline.issue(0, 3, True, DecimalFunct.RD)
        assert accelerator.commands_executed == 2
        assert accelerator.responses_sent == 1
        assert accelerator.busy_cycles_total > 0
        assert accelerator.regfile.reads > 0 and accelerator.regfile.writes > 0
        assert accelerator.pipeline.transactions == 1

        accelerator.reset()

        assert accelerator.stats == RoccStatistics()
        assert accelerator.commands_executed == 0
        assert accelerator.busy_cycles_total == 0
        assert accelerator.responses_sent == 0
        # clear_all() models the CLR_ALL instruction and counts its writes;
        # a simulator reset must forget the access history too.
        assert accelerator.regfile.reads == 0
        assert accelerator.regfile.writes == 0
        assert accelerator.pipeline.transactions == 0
        assert accelerator.pipeline.in_flight == 0
        assert accelerator.fsm.state == FsmState.IDLE

    def test_counters_are_read_only_views_of_stats(self, accelerator):
        with pytest.raises(AttributeError):
            accelerator.commands_executed = 5

    def test_warm_reuse_reproduces_counters(self):
        """A reset accelerator replays a program with identical statistics
        (the warm BatchRunner reuse path)."""
        program = _generated_program("decimal64", "multiply", 8)
        accel = _accelerator("decimal64")
        first = RocketEmulator(program.image, accelerator=accel).run()
        snapshot = (accel.stats.commands_executed, accel.stats.busy_cycles_total,
                    accel.stats.responses_sent, accel.regfile.writes,
                    accel.pipeline.transactions)
        accel.reset()
        second = RocketEmulator(program.image, accelerator=accel).run()
        assert (accel.stats.commands_executed, accel.stats.busy_cycles_total,
                accel.stats.responses_sent, accel.regfile.writes,
                accel.pipeline.transactions) == snapshot
        assert second.cycles == first.cycles
        assert program.read_results(second) == program.read_results(first)


# ---------------------------------------------------------------------------
# Register-file word-lane selectors at format boundaries
# ---------------------------------------------------------------------------
class TestWordLaneSelectors:
    def _write_lane(self, accel, register, lane, value):
        accel.execute_command(
            _command(DecimalFunct.WR, rd=lane, rs1_value=value, rs2=register,
                     xs1=True), None,
        )

    def _read_selector(self, accel, selector):
        return accel.execute_command(
            _command(DecimalFunct.RD, rs2_value=selector, xd=True, xs2=True),
            None,
        ).value

    def test_decimal128_operand_reads_back_through_every_lane(self):
        """A 3-word decimal128 operand written lane by lane reads back
        through every word-lane selector, including the partial top lane."""
        accel = _accelerator("decimal128")
        assert accel.config.register_words == 3
        lanes = (0x0123456789012345, 0x6789012345678901, 0x2345678901234567)
        for lane, value in enumerate(lanes):
            self._write_lane(accel, 3, lane, value)
        width_bits = 4 * accel.config.register_width_digits
        top_bits = width_bits - 128  # decimal128: 152-bit registers
        assert 0 < top_bits < 64
        for lane, value in enumerate(lanes):
            expected = value if lane < 2 else value & ((1 << top_bits) - 1)
            selector = regfile_word_selector(3, lane)
            assert self._read_selector(accel, selector) == expected

    def test_top_lane_merge_preserves_lower_lanes(self):
        accel = _accelerator("decimal128")
        self._write_lane(accel, 7, 0, 0x1111111111111111)
        self._write_lane(accel, 7, 1, 0x2222222222222222)
        self._write_lane(accel, 7, 2, 0x3333333333333333)
        # Rewriting the top lane must not disturb words 0 and 1.
        self._write_lane(accel, 7, 2, 0x444444)
        assert self._read_selector(accel, regfile_word_selector(7, 0)) == 0x1111111111111111
        assert self._read_selector(accel, regfile_word_selector(7, 1)) == 0x2222222222222222
        assert self._read_selector(accel, regfile_word_selector(7, 2)) == 0x444444

    def test_lane_past_the_register_width_raises(self):
        accel = _accelerator("decimal128")
        # Lane 3 has a selector encoding but no storage behind it (152 bits).
        with pytest.raises(AcceleratorError, match="word lane 3 out of range"):
            self._read_selector(accel, regfile_word_selector(0, 3))
        with pytest.raises(AcceleratorError):
            regfile_word_selector(0, 4)  # beyond the selector space itself
        # decimal64 registers are 80 bits: lane 2 has no storage either.
        with pytest.raises(AcceleratorError, match="word lane 2 out of range"):
            self._read_selector(_accelerator("decimal64"),
                                regfile_word_selector(0, 2))

    def test_decimal128_accumulator_words_read_through_selectors_19_to_21(self):
        """DEC_FMA_ACC-built accumulator content reads back word by word
        through the extended selectors (Table II read surface)."""
        accel = _accelerator("decimal128")
        assert accel.config.accumulator_words == 5
        value = int_to_bcd(9_876_543_210_987_654)
        self._write_lane(accel, 1, 0, value)
        # accumulator = value + (value << 48 digits): populates high words.
        for shift in (0, 48):
            accel.execute_command(
                _command(DecimalFunct.DEC_FMA_ACC, rs1=1, rs2_value=shift,
                         xs2=True), None,
            )
        expected = (value + (value << (4 * 48))) & (
            (1 << (4 * accel.config.accumulator_digits)) - 1
        )
        read_back = 0
        for word in range(accel.config.accumulator_words):
            selector = acc_word_selector(word)
            read_back |= self._read_selector(accel, selector) << (64 * word)
        assert read_back == expected
        assert [acc_word_selector(w) for w in (2, 3, 4)] == [19, 20, 21]
        # Top-word edge: decimal128's 272-bit accumulator leaves selector 22
        # (word 5) past the storage — it reads as zero, not garbage.
        assert self._read_selector(accel, ACC_WORD_SELECTORS[5]) == 0
        with pytest.raises(AcceleratorError, match="no RD selector"):
            acc_word_selector(len(ACC_WORD_SELECTORS))

    def test_status_selector_still_reads_status(self):
        accel = _accelerator("decimal64")
        accel.status = 0b11
        assert self._read_selector(accel, STATUS_SELECTOR) == 0b11


# ---------------------------------------------------------------------------
# Lockstep: d1w1 staged pipeline == legacy blocking FSM, bit for bit
# ---------------------------------------------------------------------------
_PROGRAM_CACHE = {}


def _generated_program(fmt, op, num_samples, seed=2018):
    key = (fmt, op, num_samples, seed)
    if key not in _PROGRAM_CACHE:
        config = TestProgramConfig(
            solution=SolutionKind.METHOD1,
            precision=_PRECISION[fmt],
            operation=op,
            num_samples=num_samples,
            seed=seed,
        )
        vectors = draw_vectors(num_samples, seed, fmt=fmt, operation=op)
        _PROGRAM_CACHE[key] = build_test_program(config, vectors=vectors)
    return _PROGRAM_CACHE[key]


def _run(image, fmt, pipelined=True, depth=1, width=1, **overrides):
    accel = _accelerator(fmt, pipelined=pipelined, depth=depth, width=width,
                         **overrides)
    result = RocketEmulator(image, accelerator=accel).run()
    return accel, result


def _assert_lockstep(image, fmt, **overrides):
    """d1w1 pipelined run must be bit-identical to the legacy timing path."""
    legacy_accel, legacy = _run(image, fmt, pipelined=False, **overrides)
    piped_accel, piped = _run(image, fmt, pipelined=True, depth=1, width=1,
                              **overrides)
    assert legacy_accel.pipeline is None
    assert piped_accel.pipeline.transactions == piped.rocc_commands
    # Timing: every counter, not just the total.
    assert piped.cycles == legacy.cycles
    assert piped.sw_cycles == legacy.sw_cycles
    assert piped.hw_cycles == legacy.hw_cycles
    assert piped.rocc_commands == legacy.rocc_commands
    assert piped.instructions_retired == legacy.instructions_retired
    # Datapath work and architectural state.
    assert piped_accel.busy_cycles_total == legacy_accel.busy_cycles_total
    assert piped_accel.commands_executed == legacy_accel.commands_executed
    assert piped_accel.responses_sent == legacy_accel.responses_sent
    assert piped_accel.accumulator == legacy_accel.accumulator
    assert piped_accel.status == legacy_accel.status
    assert piped_accel.regfile.snapshot() == legacy_accel.regfile.snapshot()
    return legacy, piped


_ALL_FUNCT_RESULT_DWORDS = 20


def _all_funct_program():
    """A hand-built program touching every Table II funct code.

    Every responding command's value is stored into the ``out`` buffer so
    two runs can be compared word for word; the carry-chained
    DEC_ADDC/DEC_SUBB pairs exercise the status-bit carry path.
    """
    builder = AsmBuilder()
    builder.data()
    builder.label("out")
    builder.dword(*([0] * _ALL_FUNCT_RESULT_DWORDS))
    builder.label("ldsrc")
    builder.dword(int_to_bcd(4_242_424_242_424_242))
    builder.text()
    builder.label("_start")
    builder.la("a5", "out")

    slot = [0]

    def store(reg="a0"):
        builder.emit("sd", reg, "a5", 8 * slot[0])
        slot[0] += 1

    builder.rocc("CLR_ALL")

    # Chunked carry chain: (9...9, 1) + (1, 0) carries between the words.
    builder.li("a0", int_to_bcd(9_999_999_999_999_999))
    builder.li("a1", int_to_bcd(1))
    builder.rocc("DEC_ADDC", rd="a2", rs1="a0", rs2="a1",
                 xd=True, xs1=True, xs2=True)
    store("a2")
    builder.li("a0", int_to_bcd(1))
    builder.li("a1", 0)
    builder.rocc("DEC_ADDC", rd="a2", rs1="a0", rs2="a1",
                 xd=True, xs1=True, xs2=True)
    store("a2")
    # Borrow chain: (0, 5) - (1, 2) borrows out of the low word.
    builder.li("a0", 0)
    builder.li("a1", int_to_bcd(1))
    builder.rocc("DEC_SUBB", rd="a2", rs1="a0", rs2="a1",
                 xd=True, xs1=True, xs2=True)
    store("a2")
    builder.li("a0", int_to_bcd(5))
    builder.li("a1", int_to_bcd(2))
    builder.rocc("DEC_SUBB", rd="a2", rs1="a0", rs2="a1",
                 xd=True, xs1=True, xs2=True)
    store("a2")

    # Register-set writes, including a word-lane merge (WR rd = lane).
    builder.li("a0", int_to_bcd(9_876_543_210_987_654))
    builder.rocc("WR", rs1="a0", rs2=1, xs1=True)
    builder.li("a0", int_to_bcd(8_765_432_109_876_543))
    builder.rocc("WR", rs1="a0", rs2=2, xs1=True)
    builder.li("a0", int_to_bcd(1_111_111_111_111_111))
    builder.rocc("WR", rs1="a0", rs2=3, xs1=True)
    builder.li("a0", int_to_bcd(77))
    builder.rocc("WR", rd=1, rs1="a0", rs2=3, xs1=True)  # lane 1 merge

    # DEC_ADD: register operands into reg4, then a responding variant.
    builder.rocc("DEC_ADD", rd=4, rs1=1, rs2=2)
    builder.rocc("DEC_ADD", rd="a0", rs1=1, rs2=2, xd=True)
    store()

    # DEC_CNV: binary-to-BCD, both response modes.
    builder.li("a0", 1234567)
    builder.rocc("DEC_CNV", rd=5, rs1="a0", xs1=True)
    builder.rocc("DEC_CNV", rd="a1", rs1="a0", xd=True, xs1=True)
    store("a1")

    # ACCUM: binary accumulate, non-responding then responding.
    builder.li("a0", 1000)
    builder.rocc("ACCUM", rd=6, rs1="a0", xs1=True)
    builder.rocc("ACCUM", rd="a2", rs1="a0", xd=True, xs1=True)
    store("a2")

    # LD through the RoCC memory channel, read back through the regfile.
    builder.la("a0", "ldsrc")
    builder.rocc("LD", rs1="a0", rs2=7, xs1=True)
    builder.rocc("RD", rd="a0", rs2=7, xd=True)
    store()

    # DEC_MUL into the accumulator (needs include_multiplier=True).
    builder.rocc("DEC_MUL", rd="a3", rs1=1, rs2=2, xd=True)
    store("a3")
    builder.rocc("DEC_MUL", rs1=1, rs2=3)

    # DEC_ACCUM: default one-digit shift, then an explicit shift + response.
    builder.rocc("DEC_ACCUM", rs1=4)
    builder.li("a1", 2)
    builder.rocc("DEC_ACCUM", rd="a0", rs1=4, rs2="a1", xs2=True, xd=True)
    store()

    # DEC_ADDSUB: subtraction, both response modes.
    builder.rocc("DEC_ADDSUB", rd=8, rs1=1, rs2=2)
    builder.rocc("DEC_ADDSUB", rd="a0", rs1=2, rs2=1, xd=True)
    store()

    # DEC_FMA_ACC: shifted addend merge into the accumulator.
    builder.li("a1", 3)
    builder.rocc("DEC_FMA_ACC", rd="a0", rs1=4, rs2="a1", xs2=True, xd=True)
    store()

    # RD surface: status, the low accumulator words, a regfile word lane.
    for selector in (STATUS_SELECTOR, ACC_WORD_SELECTORS[0],
                     ACC_WORD_SELECTORS[1]):
        builder.rocc("RD", rd="a0", rs2=selector, xd=True)
        store()
    for lane in (0, 1):
        builder.li("a1", regfile_word_selector(3, lane))
        builder.rocc("RD", rd="a0", rs2="a1", xd=True, xs2=True)
        store()

    builder.li("t5", TOHOST_ADDRESS)
    builder.li("t6", 1)
    builder.emit("sd", "t6", "t5", 0)
    builder.label("spin")
    builder.j("spin")
    return builder.link()


class TestLockstepAllFunctCodes:
    @pytest.fixture(scope="class")
    def image(self):
        return _all_funct_program()

    @pytest.mark.parametrize("fmt", ["decimal64", "decimal128"])
    def test_every_funct_code_is_bit_identical(self, image, fmt):
        legacy, piped = _assert_lockstep(image, fmt, include_multiplier=True)
        legacy_words = legacy.read_dwords("out", _ALL_FUNCT_RESULT_DWORDS)
        piped_words = piped.read_dwords("out", _ALL_FUNCT_RESULT_DWORDS)
        assert piped_words == legacy_words
        # The buffer is really exercised: every stored slot is nonzero
        # except the carried-to-zero DEC_ADDC low word and the status read.
        stored = legacy_words[:17]
        assert all(word for i, word in enumerate(stored) if i not in (0, 12))

    def test_program_covers_every_funct_code(self, image):
        accel = _accelerator("decimal64", include_multiplier=True)
        RocketEmulator(image, accelerator=accel).run()
        executed = set(accel.function_counts)
        assert executed == set(DecimalFunct.BY_NAME)

    @pytest.mark.parametrize("fmt", ["decimal64", "decimal128"])
    def test_deeper_configs_keep_values_and_never_slow_down(self, image, fmt):
        _, reference = _run(image, fmt, pipelined=False,
                            include_multiplier=True)
        expected = reference.read_dwords("out", _ALL_FUNCT_RESULT_DWORDS)
        previous_cycles = None
        for depth in (1, 2, 4, 8):
            accel, result = _run(image, fmt, depth=depth,
                                 include_multiplier=True)
            assert result.read_dwords("out", _ALL_FUNCT_RESULT_DWORDS) == expected
            assert accel.busy_cycles_total > 0
            if previous_cycles is not None:
                assert result.cycles <= previous_cycles
            previous_cycles = result.cycles


class TestLockstepGeneratedKernels:
    """Seeded operand sweeps through the real Method-1 kernels."""

    CASES = [
        ("decimal64", "multiply", 200),   # the paper's Table IV axis
        ("decimal64", "add", 50),
        ("decimal64", "subtract", 50),
        ("decimal64", "fma", 50),
        ("decimal128", "multiply", 12),
        ("decimal128", "fma", 10),
    ]

    @pytest.mark.parametrize("fmt,op,num_samples", CASES)
    def test_kernel_sweep_is_bit_identical_at_d1w1(self, fmt, op, num_samples):
        program = _generated_program(fmt, op, num_samples)
        legacy, piped = _assert_lockstep(program.image, fmt)
        assert program.read_results(piped) == program.read_results(legacy)

    def test_deeper_and_wider_configs_keep_kernel_values(self):
        program = _generated_program("decimal64", "multiply", 40)
        _, reference = _run(program.image, "decimal64", pipelined=False)
        expected = program.read_results(reference)
        baseline_accel, baseline = _run(program.image, "decimal64")
        cycles_by_depth = []
        for depth in (1, 2, 4, 8):
            for width in (1, 2):
                accel, result = _run(program.image, "decimal64",
                                     depth=depth, width=width)
                assert program.read_results(result) == expected
                # The datapath work is conserved at every design point.
                assert accel.busy_cycles_total == baseline_accel.busy_cycles_total
                # Wider issue never slows a design point down.
                if width == 1:
                    cycles_by_depth.append(result.cycles)
                else:
                    assert result.cycles <= cycles_by_depth[-1]
        assert cycles_by_depth == sorted(cycles_by_depth, reverse=True)
        assert cycles_by_depth[-1] < cycles_by_depth[0]  # depth actually pays
        assert baseline.cycles == reference.cycles


# ---------------------------------------------------------------------------
# Pareto frontier properties
# ---------------------------------------------------------------------------
def _point(name, cycles, gates):
    return ParetoPoint(name=name, avg_cycles=cycles, gate_equivalents=gates)


class TestParetoFrontier:
    def test_dominates(self):
        a = _point("a", 1.0, 10.0)
        b = _point("b", 2.0, 10.0)
        c = _point("c", 1.0, 10.0)
        assert a.dominates(b) and not b.dominates(a)
        assert not a.dominates(c) and not c.dominates(a)  # coincident

    def test_hand_built_fixture(self):
        frontier_points = [
            _point("fast", 1.0, 10.0),
            _point("balanced", 2.0, 5.0),
            _point("small", 3.0, 3.0),
        ]
        dominated = [
            _point("worse-balanced", 2.0, 6.0),   # dominated by balanced
            _point("strictly-worse", 4.0, 11.0),  # dominated by everything
        ]
        frontier = frontier_of(frontier_points + dominated)
        assert frontier == frontier_points  # already in frontier order
        assert all(point not in frontier for point in dominated)

    def test_coincident_points_all_survive(self):
        twin_a = _point("twin-a", 2.0, 5.0)
        twin_b = _point("twin-b", 2.0, 5.0)
        frontier = frontier_of([twin_a, twin_b, _point("worse", 2.0, 6.0)])
        assert frontier == [twin_a, twin_b]

    def test_random_cloud_properties(self):
        rng = random.Random(2018)
        points = [
            _point(f"p{i}", round(rng.uniform(1, 100), 2),
                   round(rng.uniform(1, 100), 2))
            for i in range(80)
        ]
        frontier = frontier_of(points)
        assert frontier
        # No returned point is dominated by any candidate.
        for point in frontier:
            assert not any(other.dominates(point) for other in points)
        # Every excluded candidate is dominated by some frontier point.
        for point in points:
            if point not in frontier:
                assert any(other.dominates(point) for other in frontier)

    def test_order_is_deterministic_under_shuffle(self):
        rng = random.Random(7)
        points = [
            _point(f"p{i}", float(rng.randint(1, 10)), float(rng.randint(1, 10)))
            for i in range(40)
        ]
        expected = frontier_of(points)
        for _ in range(5):
            rng.shuffle(points)
            assert frontier_of(points) == expected
        keys = [(p.avg_cycles, p.gate_equivalents, p.name) for p in expected]
        assert keys == sorted(keys)


# ---------------------------------------------------------------------------
# Sweep plumbing: variants, cells, campaign, analyzer, CLI
# ---------------------------------------------------------------------------
class TestSweepPlumbing:
    def test_microarchitecture_variants_pin_the_knobs(self):
        variants = microarchitecture_variants(depths=(1, 2), widths=(1, 2))
        suffixes = [v.name.split()[-1] for v in variants]
        assert suffixes == ["d1w1", "d1w2", "d2w1", "d2w2"]
        assert len({v.name for v in variants}) == len(variants)
        for variant in variants:
            config = variant.accelerator_config
            assert config.pipelined
        assert variants[0].accelerator_config.pipeline_depth == 1
        assert variants[-1].accelerator_config.pipeline_depth == 2
        assert variants[-1].accelerator_config.issue_width == 2
        with pytest.raises(ConfigurationError):
            microarchitecture_variants(depths=(), widths=(1,))

    def test_pipeline_sweep_cells_labels_are_unique(self):
        cells = pipeline_sweep_cells(depths=(1, 2), widths=(1,), num_samples=4)
        labels = [cell.label for cell in cells]
        assert len(labels) == len(set(labels))
        assert len(cells) == 3  # software baseline + two variants
        assert any("Software" in label for label in labels)

    def test_small_campaign_produces_a_consistent_frontier(self):
        result = run_pipeline_sweep_campaign(
            depths=(1, 4), widths=(1,), num_samples=6,
        )
        groups = points_from_campaign(result)
        assert set(groups) == {("multiply", "decimal64")}
        points = groups[("multiply", "decimal64")]
        assert len(points) == 3
        baseline = [p for p in points if p.gate_equivalents == 0.0]
        assert len(baseline) == 1  # the software reference point
        frontier = frontier_of(points)
        assert frontier and set(frontier) <= set(points)
        for point in frontier:
            assert not any(other.dominates(point) for other in points)
        # The deeper design point trades area for cycles against d1w1.
        by_suffix = {p.name.split()[-1]: p for p in points}
        assert by_suffix["d4w1"].avg_cycles <= by_suffix["d1w1"].avg_cycles
        assert by_suffix["d4w1"].gate_equivalents > by_suffix["d1w1"].gate_equivalents

    def test_analyzer_sweep_microarchitecture(self):
        from repro.core.evaluation import EvaluationFramework
        from repro.core.pareto import ParetoAnalyzer

        analyzer = ParetoAnalyzer(
            framework=EvaluationFramework(num_samples=3, seed=11)
        )
        points = analyzer.sweep_microarchitecture(depths=(1, 2), widths=(1,))
        assert len(points) == 3  # baseline + d1w1 + d2w1
        assert analyzer.points == points
        frontier = analyzer.frontier()
        assert frontier == frontier_of(points)

    def test_cli_pipeline_sweep(self, tmp_path, capsys):
        from repro.campaign import main

        json_path = tmp_path / "sweep.json"
        rc = main([
            "--pipeline-sweep", "--depths", "1,2", "--widths", "1",
            "--samples", "4", "--json", str(json_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Pipeline microarchitecture sweep" in out
        import json

        summary = json.loads(json_path.read_text())
        frontier = summary["pipeline_frontier"]["multiply/decimal64"]
        assert len(frontier) == 3
        assert any(entry["pareto"] for entry in frontier)

    def test_cli_rejects_conflicting_axes(self):
        from repro.campaign import main

        with pytest.raises(SystemExit):
            main(["--pipeline-sweep", "--workload", "paper-uniform"])
        with pytest.raises(SystemExit):
            main(["--pipeline-sweep", "--kinds", "method1"])


# ---------------------------------------------------------------------------
# Area model: pipeline knobs cost hardware, the d1w1 point costs nothing
# ---------------------------------------------------------------------------
class TestPipelineAreaModel:
    def test_d1w1_area_matches_the_blocking_design(self):
        blocking = DecimalAcceleratorConfig().area_report()
        d1w1 = DecimalAcceleratorConfig.for_format("decimal64").area_report()
        assert d1w1.total_gate_equivalents == blocking.total_gate_equivalents
        assert d1w1.total_flip_flops == blocking.total_flip_flops
        names = [c.name for c in d1w1.components]
        assert not any("pipeline stage" in name for name in names)
        assert not any("issue" in name for name in names)

    @pytest.mark.parametrize("fmt", ["decimal64", "decimal128"])
    def test_depth_and_width_cost_monotonically(self, fmt):
        def totals(depth, width):
            report = DecimalAcceleratorConfig.for_format(
                fmt, pipeline_depth=depth, issue_width=width
            ).area_report()
            return report.total_gate_equivalents, report.total_flip_flops

        base = totals(1, 1)
        deeper = totals(2, 1)
        deepest = totals(4, 1)
        wider = totals(1, 2)
        assert base < deeper < deepest
        assert base < wider
        names = [
            c.name
            for c in DecimalAcceleratorConfig.for_format(
                fmt, pipeline_depth=4, issue_width=2
            ).area_report().components
        ]
        assert any("pipeline stage registers (4 stages)" in n for n in names)
        assert any("issue/retire queues (width 2)" in n for n in names)

    def test_config_rejects_nonpositive_knobs(self):
        with pytest.raises(AcceleratorError):
            DecimalAcceleratorConfig(pipeline_depth=0)
        with pytest.raises(AcceleratorError):
            DecimalAcceleratorConfig(issue_width=0)
