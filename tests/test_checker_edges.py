"""Edge-case tests for the result checker (CheckReport / results_match).

Covers the reporting edges the differential engine leans on: failure-list
truncation in ``raise_on_failure``, IEEE-level NaN/sign matching rules, and
the stability of ``describe()`` output (fuzz reproducers quote it verbatim).
"""

from __future__ import annotations

import pytest

from repro.decnumber.number import DecNumber
from repro.errors import VerificationError
from repro.verification.checker import CheckFailure, CheckReport, ResultChecker
from repro.verification.database import VerificationDatabase
from repro.verification.reference import GoldenReference


def _failure(index: int) -> CheckFailure:
    return CheckFailure(
        index=index,
        operand_class="normal",
        x=DecNumber(0, 2, 0),
        y=DecNumber(0, 3, 0),
        expected=DecNumber(0, 6, 0),
        actual=DecNumber(0, 7, 0),
        expected_bits=0x2230000000000006,
        actual_bits=0x2230000000000007,
    )


# ----------------------------------------------------------- raise_on_failure
def test_raise_on_failure_truncates_at_max_reported():
    report = CheckReport(total=20, passed=12)
    report.failures = [_failure(index) for index in range(8)]
    with pytest.raises(VerificationError) as excinfo:
        report.raise_on_failure(max_reported=3)
    message = str(excinfo.value)
    assert "8/20 samples mismatched" in message
    # Exactly three sample lines survive the truncation.
    assert message.count("sample ") == 3
    for index in range(3):
        assert f"sample {index} " in message
    assert "sample 3 " not in message


def test_raise_on_failure_default_reports_five():
    report = CheckReport(total=10, passed=2)
    report.failures = [_failure(index) for index in range(8)]
    with pytest.raises(VerificationError) as excinfo:
        report.raise_on_failure()
    assert str(excinfo.value).count("sample ") == 5


def test_raise_on_failure_is_silent_when_clean():
    report = CheckReport(total=4, passed=4)
    report.raise_on_failure()  # must not raise


def test_all_passed_requires_at_least_one_sample():
    assert not CheckReport().all_passed
    assert CheckReport(total=1, passed=1).all_passed
    failing = CheckReport(total=1, passed=0, failures=[_failure(0)])
    assert not failing.all_passed
    assert failing.failed == 1


# --------------------------------------------------------------- results_match
def test_results_match_nan_ignores_payload_and_signaling():
    match = ResultChecker.results_match
    assert match(DecNumber.qnan(1), DecNumber.qnan(999))
    assert match(DecNumber.qnan(0), DecNumber.snan(5))
    assert match(DecNumber.snan(7, sign=1), DecNumber.qnan(7, sign=0))
    assert not match(DecNumber.qnan(0), DecNumber(0, 0, 0))
    assert not match(DecNumber.qnan(0), DecNumber.infinity(0))
    # Expected finite/infinite never matches an actual NaN.
    assert not match(DecNumber(0, 1, 0), DecNumber.qnan(0))
    assert not match(DecNumber.infinity(0), DecNumber.qnan(0))


def test_results_match_infinity_is_sign_sensitive():
    match = ResultChecker.results_match
    assert match(DecNumber.infinity(0), DecNumber.infinity(0))
    assert match(DecNumber.infinity(1), DecNumber.infinity(1))
    assert not match(DecNumber.infinity(0), DecNumber.infinity(1))
    assert not match(DecNumber.infinity(0), DecNumber(0, 1, 369))


def test_results_match_zero_is_sign_and_exponent_sensitive():
    match = ResultChecker.results_match
    assert match(DecNumber(0, 0, 5), DecNumber(0, 0, 5))
    assert not match(DecNumber(0, 0, 5), DecNumber(1, 0, 5))    # -0 vs +0
    assert not match(DecNumber(0, 0, 5), DecNumber(0, 0, 4))    # 0E+5 vs 0E+4


def test_results_match_finite_compares_representation_not_value():
    match = ResultChecker.results_match
    # 1E+1 and 10E+0 are numerically equal but not the same member triple.
    assert not match(DecNumber(0, 1, 1), DecNumber(0, 10, 0))
    assert match(DecNumber(1, 42, -3), DecNumber(1, 42, -3))
    assert not match(DecNumber(0, 42, -3), DecNumber(1, 42, -3))


# -------------------------------------------------------------------- describe
def test_describe_output_is_stable():
    failure = _failure(3)
    assert failure.describe() == (
        "sample 3 [normal]: 2 * 3 -> expected 6 (0x2230000000000006), "
        "got 7 (0x2230000000000007)"
    )


def test_describe_special_values_render_sci_strings():
    failure = CheckFailure(
        index=0,
        operand_class="special",
        x=DecNumber.infinity(1),
        y=DecNumber.qnan(42),
        expected=DecNumber.qnan(42),
        actual=DecNumber(0, 0, 0),
        expected_bits=0x7C00000000000042,
        actual_bits=0x2238000000000000,
    )
    text = failure.describe()
    assert "-Infinity * NaN42" in text
    assert "expected NaN42" in text


# --------------------------------------------------------------- end-to-end run
def test_check_run_flags_exactly_the_corrupted_samples():
    golden = GoldenReference()
    vectors = VerificationDatabase(55).generate_mix(12)
    words = [golden.compute(v.x, v.y).encoded for v in vectors]
    # Corrupt two finite-result samples (the mix cycles normal, rounding,
    # overflow, underflow, clamping; index 2 would be an infinity, whose
    # encoding ignores low bits).
    assert golden.decode(words[0]).is_finite
    assert golden.decode(words[9]).is_finite
    words[0] ^= 0b1
    words[9] ^= 0b100
    report = ResultChecker().check_run(vectors, words)
    assert report.total == 12
    assert report.failed == 2
    assert [failure.index for failure in report.failures] == [0, 9]
    assert report.passed == 10
