"""Property-based dual-oracle tests: decnumber vs stdlib decimal.

The differential engine's second oracle is Python's stdlib :mod:`decimal`
module, an independent implementation of the same General Decimal Arithmetic
specification as decNumber.  These tests sweep thousands of seeded operand
pairs — plus directed NaN-payload, signed-zero and subnormal edges — and
assert the two oracles produce bit-identical decimal64 results, so any
divergence between them in a fuzz campaign is a real finding, not noise.
"""

from __future__ import annotations

import random

import pytest

from repro.decnumber import decimal64
from repro.decnumber.arith import multiply
from repro.decnumber.number import DecNumber
from repro.errors import VerificationError
from repro.verification.checker import ResultChecker
from repro.verification.database import OperandClass, VerificationDatabase
from repro.verification.differential import (
    DualCheckReport,
    DualOracleChecker,
    OracleDisagreement,
    StdlibDecimalReference,
)
from repro.verification.reference import GoldenReference


def _stdlib_multiply(x: DecNumber, y: DecNumber) -> DecNumber:
    ctx = decimal64.context().to_python_context()
    return DecNumber.from_decimal(ctx.multiply(x.to_decimal(), y.to_decimal()))


def _decnumber_multiply(x: DecNumber, y: DecNumber) -> DecNumber:
    return multiply(x, y, decimal64.context())


def _assert_same(x: DecNumber, y: DecNumber) -> None:
    ours = _decnumber_multiply(x, y)
    theirs = _stdlib_multiply(x, y)
    assert (ours.kind, ours.sign, ours.coefficient, ours.exponent) == (
        theirs.kind,
        theirs.sign,
        theirs.coefficient,
        theirs.exponent,
    ), f"{x} * {y}: decnumber {ours!r} != stdlib {theirs!r}"


# ---------------------------------------------------------------- seeded sweep
def test_seeded_sweep_all_classes_matches_stdlib_decimal():
    """>=5k constrained-random pairs across every operand class agree."""
    database = VerificationDatabase(seed=20180401)
    vectors = database.generate_mix(5120, OperandClass.ALL)
    assert len(vectors) >= 5000
    for vector in vectors:
        _assert_same(vector.x, vector.y)


def test_random_wide_sweep_matches_stdlib_decimal():
    """Unconstrained random finite pairs over the full decimal64 envelope."""
    rng = random.Random(97)
    for _ in range(1500):
        x = DecNumber(
            rng.randint(0, 1),
            rng.randint(0, 10 ** rng.randint(1, 16) - 1),
            rng.randint(-398, 369),
        )
        y = DecNumber(
            rng.randint(0, 1),
            rng.randint(0, 10 ** rng.randint(1, 16) - 1),
            rng.randint(-398, 369),
        )
        _assert_same(x, y)


# -------------------------------------------------------------- directed edges
@pytest.mark.parametrize("payload", [0, 1, 999, 999_999, 123456789])
@pytest.mark.parametrize("sign", [0, 1])
def test_nan_payload_propagation_matches(payload, sign):
    finite = DecNumber(0, 5, 0)
    for nan in (DecNumber.qnan(payload, sign), DecNumber.snan(payload, sign)):
        _assert_same(nan, finite)
        _assert_same(finite, nan)
        _assert_same(nan, DecNumber.qnan(7, 1 - sign))


def test_signed_zero_products_match():
    for sx in (0, 1):
        for sy in (0, 1):
            _assert_same(DecNumber(sx, 0, 10), DecNumber(sy, 123, -5))
            _assert_same(DecNumber(sx, 0, -398), DecNumber(sy, 0, 369))
            _assert_same(DecNumber(sx, 0, 0), DecNumber.infinity(sy))


def test_subnormal_edges_match():
    cases = [
        (DecNumber(0, 1, -398), DecNumber(0, 1, 0)),          # smallest subnormal
        (DecNumber(0, 1, -199), DecNumber(0, 1, -199)),       # etiny product
        (DecNumber(0, 5, -200), DecNumber(0, 1, -199)),       # below etiny
        (DecNumber(0, 10 ** 15, -398), DecNumber(0, 1, 0)),
        (DecNumber(1, 9999999999999999, -383), DecNumber(0, 1, -15)),
        (DecNumber(0, 3, -398), DecNumber(1, 1, -1)),         # rounds to zero
    ]
    for x, y in cases:
        _assert_same(x, y)


def test_overflow_and_clamp_edges_match():
    cases = [
        (DecNumber(0, 9999999999999999, 369), DecNumber(0, 1, 0)),
        (DecNumber(0, 10 ** 8, 200), DecNumber(0, 10 ** 8, 169)),
        (DecNumber(0, 1, 369), DecNumber(0, 1, 5)),            # fold-down clamp
        (DecNumber(1, 123, 370), DecNumber(0, 45, 5)),
    ]
    for x, y in cases:
        _assert_same(x, y)


# ----------------------------------------------------- StdlibDecimalReference
def test_stdlib_reference_flags_and_encoding():
    reference = StdlibDecimalReference()
    golden = GoldenReference()
    database = VerificationDatabase(seed=5)
    for vector in database.generate_mix(250, OperandClass.ALL):
        second = reference.compute(vector.x, vector.y)
        primary = golden.compute(vector.x, vector.y)
        assert second.encoded == primary.encoded
    overflowed = reference.compute(
        DecNumber(0, 9999999999999999, 369), DecNumber(0, 9, 0)
    )
    assert "overflow" in overflowed.flags
    assert overflowed.value.is_infinite
    tiny = reference.compute(DecNumber(0, 1, -398), DecNumber(0, 1, -1))
    assert "underflow" in tiny.flags


# ------------------------------------------------------------ dual-oracle runs
class _WrongSecondary(StdlibDecimalReference):
    """A deliberately broken second oracle (off-by-one coefficients)."""

    def compute(self, x, y):
        result = super().compute(x, y)
        value = result.value
        if value.is_finite and value.coefficient:
            from repro.verification.reference import GoldenResult

            broken = DecNumber(value.sign, value.coefficient - 1, value.exponent)
            return GoldenResult(
                value=broken,
                encoded=self.encode_operand(broken),
                flags=result.flags,
            )
        return result


def _vectors(count=16, seed=11):
    return VerificationDatabase(seed).generate_mix(count)


def test_dual_checker_passes_on_agreeing_oracles_and_correct_kernel():
    vectors = _vectors()
    golden = GoldenReference()
    words = [golden.compute(v.x, v.y).encoded for v in vectors]
    report = DualOracleChecker().check_run(vectors, words)
    assert isinstance(report, DualCheckReport)
    assert report.all_passed
    assert report.total == len(vectors)
    assert not report.oracle_disagreements
    report.raise_on_failure()  # must not raise


def test_dual_checker_reports_kernel_mismatch_as_check_failure():
    vectors = _vectors()
    golden = GoldenReference()
    words = [golden.compute(v.x, v.y).encoded for v in vectors]
    words[3] ^= 1
    report = DualOracleChecker().check_run(vectors, words)
    assert report.failed == 1
    assert not report.oracle_disagreements
    assert not report.all_passed


def test_oracle_disagreement_is_its_own_failure_class():
    vectors = _vectors()
    golden = GoldenReference()
    words = [golden.compute(v.x, v.y).encoded for v in vectors]
    checker = DualOracleChecker(secondary=_WrongSecondary())
    report = checker.check_run(vectors, words)
    # The kernel matches the primary oracle everywhere...
    assert report.failed == 0
    # ...but the oracles disagree on every finite nonzero product.
    assert report.oracle_disagreements
    assert all(
        isinstance(item, OracleDisagreement)
        for item in report.oracle_disagreements
    )
    assert not report.all_passed
    with pytest.raises(VerificationError, match="oracle disagreement"):
        report.raise_on_failure()
    first = report.oracle_disagreements[0]
    assert "oracles disagree" in first.describe()
    assert f"{first.primary_bits:016x}" in first.describe()


def test_dual_checker_is_a_result_checker():
    assert isinstance(DualOracleChecker(), ResultChecker)
