"""Tier-2 compiled-superblock engine and batch-vector execution tests.

Locks down the contract of the exec-compiled tier (see docs/simulator.md):

* tier-2 execution is bit-identical to the tier-1 threaded-code engine on
  RV64IM edge semantics (lockstep runs over the same programs),
* speculation (exact-value, range, pinned-base, hook-set) deoptimizes
  safely — entry-guard failure falls back to tier 1, pruning lets the head
  re-promote against the live values, and results never change,
* self-modifying code de-promotes compiled superblocks,
* ``run``/``step`` and cold/warm (batch-mode) execution agree exactly,
* :class:`~repro.sim.batch.BatchRunner` and the campaign engine's warm
  workers reproduce the cold path sample for sample.
"""

from __future__ import annotations

import pytest

from repro.errors import TrapError
from repro.isa.encoder import encode_instruction
from repro.sim.batch import BatchRunner
from repro.sim.executor import Executor
from repro.sim.hart import Hart
from repro.sim.memory import SparseMemory
from repro.sim.spike import SpikeSimulator

MASK64 = 0xFFFFFFFFFFFFFFFF
BASE = 0x1000
DATA = 0x8000
INT64_MIN = 1 << 63


def make_executor(words, regs=None, threshold=64, **kwargs):
    """Encoded words at ``BASE``; returns (executor, hart, memory)."""
    memory = SparseMemory()
    for index, word in enumerate(words):
        memory.write(BASE + 4 * index, 4, word)
    hart = Hart(pc=BASE)
    for reg, value in (regs or {}).items():
        hart.regs[reg] = value & MASK64
    return Executor(hart, memory, promote_threshold=threshold, **kwargs), hart, memory


def run_to_trap(executor, budget=1_000_000):
    """Run until the final ``ebreak`` traps; returns instructions retired."""
    with pytest.raises(TrapError):
        executor.run(budget)
    return executor.retired


def final_state(words, regs, threshold, data=None, data_words=16, **kwargs):
    """Run to the trap and return (regs, retired, data words) for comparison."""
    executor, hart, memory = make_executor(
        words, regs=regs, threshold=threshold, **kwargs
    )
    for offset, value in (data or {}).items():
        memory.write(DATA + offset, 8, value)
    run_to_trap(executor)
    return (
        list(hart.regs),
        executor.retired,
        [memory.read(DATA + 8 * i, 8) for i in range(data_words)],
        executor,
    )


def assert_lockstep(words, regs, data=None):
    """Tier-1-only and tier-2-forced runs must agree bit for bit."""
    r1, n1, m1, ex1 = final_state(words, regs, threshold=0, data=data, tier2=False)
    r2, n2, m2, ex2 = final_state(words, regs, threshold=32, data=data)
    assert ex1.tier2_blocks == 0
    assert ex2.tier2_blocks > 0, "tier 2 never engaged — test is vacuous"
    assert r1 == r2
    assert n1 == n2
    assert m1 == m2


class TestTierLockstep:
    def test_rv64im_edge_alu_loop(self):
        # A hot loop over RV64IM edge semantics: shift-amount masking,
        # signed-overflow division, remainder by zero, 32-bit op sign
        # extension — accumulated so any divergence sticks.
        words = [
            encode_instruction("sll", 6, 20, 21),    # shamt 0x43 -> 3
            encode_instruction("sra", 7, 22, 21),    # arithmetic on INT64_MIN
            encode_instruction("div", 8, 22, 23),    # INT64_MIN / -1 overflow
            encode_instruction("rem", 9, 20, 0),     # remainder by zero -> rs1
            encode_instruction("mulw", 10, 22, 24),  # 32-bit product, sext
            encode_instruction("sraw", 11, 24, 21),  # 32-bit shift, masked
            encode_instruction("add", 28, 28, 6),
            encode_instruction("add", 28, 28, 7),
            encode_instruction("add", 28, 28, 8),
            encode_instruction("add", 28, 28, 9),
            encode_instruction("add", 28, 28, 10),
            encode_instruction("add", 28, 28, 11),
            encode_instruction("addi", 5, 5, -1),
            encode_instruction("bne", 5, 0, -52),
            encode_instruction("ebreak"),
        ]
        regs = {5: 300, 20: 0xABCD, 21: 0x43, 22: INT64_MIN,
                23: MASK64, 24: 0x80000001}
        assert_lockstep(words, regs)

    def test_mask_elision_bounds(self):
        # Values hovering at the 2^63 / 2^64 wrap: the compiled trace elides
        # 64-bit masks only where a bound proof holds, so accumulate sums
        # that cross both boundaries every iteration.
        words = [
            encode_instruction("add", 6, 20, 21),     # wraps past 2^64
            encode_instruction("addi", 7, 6, 2047),
            encode_instruction("sub", 8, 0, 7),       # negation wrap
            encode_instruction("add", 28, 28, 8),
            encode_instruction("addi", 5, 5, -1),
            encode_instruction("bne", 5, 0, -16),
            encode_instruction("ebreak"),
        ]
        regs = {5: 300, 20: MASK64 - 3, 21: (1 << 63) + 5}
        assert_lockstep(words, regs)

    def test_memory_lanes_all_widths(self):
        # Loads/stores of every width through a loop-invariant base: the
        # compiled page-view lanes (8/4/2/1 bytes, signed and unsigned
        # loads) must match the scalar memory path exactly.
        words = [
            encode_instruction("ld", 6, 21, 0),
            encode_instruction("lw", 7, 21, 8),      # sign-extends
            encode_instruction("lwu", 8, 21, 8),
            encode_instruction("lh", 9, 21, 16),
            encode_instruction("lhu", 10, 21, 16),
            encode_instruction("lb", 11, 21, 24),
            encode_instruction("lbu", 12, 21, 24),
            encode_instruction("add", 13, 6, 7),
            encode_instruction("add", 13, 13, 9),
            encode_instruction("add", 13, 13, 11),
            encode_instruction("sd", 13, 21, 32),
            encode_instruction("sw", 13, 21, 40),
            encode_instruction("sh", 13, 21, 48),
            encode_instruction("sb", 13, 21, 56),
            encode_instruction("add", 28, 28, 13),
            encode_instruction("add", 28, 28, 8),
            encode_instruction("add", 28, 28, 10),
            encode_instruction("add", 28, 28, 12),
            encode_instruction("addi", 5, 5, -1),
            encode_instruction("bne", 5, 0, -76),
            encode_instruction("ebreak"),
        ]
        regs = {5: 300, 21: DATA}
        data = {0: 0x8000_0000_0000_0001, 8: 0xFFFF_FFFF_8000_0001,
                16: 0x8001, 24: 0x81}
        assert_lockstep(words, regs, data=data)

    def test_page_crossing_base_walk(self):
        # The base register walks across a page boundary, so the compiled
        # pinned-base lane must take its page-crossing slow path mid-run.
        words = [
            encode_instruction("ld", 6, 21, 0),
            encode_instruction("add", 28, 28, 6),
            encode_instruction("sd", 28, 21, 8),
            encode_instruction("addi", 21, 21, 64),
            encode_instruction("addi", 5, 5, -1),
            encode_instruction("bne", 5, 0, -20),
            encode_instruction("ebreak"),
        ]
        # 300 iterations x 64 bytes ~ 19 KiB: crosses several 4 KiB pages.
        regs = {5: 300, 21: DATA}
        assert_lockstep(words, regs, data={0: 12345})

    def test_jalr_target_changes_between_iterations(self):
        # jalr alternates between two targets each iteration (held in x30
        # and x31 — addi immediates cannot encode absolute addresses);
        # tier-2 jalr target speculation must check the live value.
        words = [
            encode_instruction("jalr", 1, 20, 0),       # 0x00 computed jump
            encode_instruction("ebreak"),               # 0x04
            encode_instruction("addi", 28, 28, 1),      # 0x08 target A
            encode_instruction("addi", 20, 31, 0),      # 0x0c next -> B
            encode_instruction("addi", 5, 5, -1),       # 0x10
            encode_instruction("bne", 5, 0, -20),       # 0x14 -> 0x00
            encode_instruction("ebreak"),               # 0x18
            encode_instruction("addi", 28, 28, 100),    # 0x1c target B
            encode_instruction("addi", 20, 30, 0),      # 0x20 next -> A
            encode_instruction("addi", 5, 5, -1),       # 0x24
            encode_instruction("bne", 5, 0, -40),       # 0x28 -> 0x00
            encode_instruction("ebreak"),               # 0x2c
        ]
        regs = {5: 400, 20: BASE + 0x08, 30: BASE + 0x08, 31: BASE + 0x1C}
        assert_lockstep(words, regs)

    def test_counter_csr_inlined_brackets(self):
        # rdcycle-style brackets (csrrs rd, 0xC00, x0) inside a hot loop:
        # with the counter-CSR contract the tier-2 trace inlines them as
        # retire-count arithmetic; deltas must equal the tier-1 engine's.
        words = [
            encode_instruction("csrrs", 6, 0xC02, 0),   # instret, pure read
            encode_instruction("add", 8, 20, 21),
            encode_instruction("add", 8, 8, 8),
            encode_instruction("csrrs", 7, 0xC02, 0),
            encode_instruction("sub", 9, 7, 6),          # bracket delta
            encode_instruction("add", 28, 28, 9),
            encode_instruction("addi", 5, 5, -1),
            encode_instruction("bne", 5, 0, -24),
            encode_instruction("ebreak"),
        ]
        regs = {5: 300, 20: 7, 21: 9}
        results = []
        for threshold, tier2 in ((0, False), (32, True)):
            memory = SparseMemory()
            for index, word in enumerate(words):
                memory.write(BASE + 4 * index, 4, word)
            hart = Hart(pc=BASE)
            for reg, value in regs.items():
                hart.regs[reg] = value
            executor = Executor(
                hart, memory, promote_threshold=threshold, tier2=tier2,
                counter_csrs=(0xC00, 0xC02),
            )
            executor.csr_provider = lambda addr, e=executor: e.retired
            run_to_trap(executor)
            results.append((list(hart.regs), executor.retired))
            if tier2:
                assert executor.tier2_blocks > 0
        assert results[0] == results[1]


class TestDeopt:
    #: countdown loop whose body folds x20 (never written) and loads
    #: through x21 — promotion speculates on both.
    WORDS = [
        encode_instruction("addi", 6, 20, 1),
        encode_instruction("ld", 7, 21, 0),
        encode_instruction("add", 8, 6, 7),
        encode_instruction("sd", 8, 21, 8),
        encode_instruction("addi", 5, 5, -1),
        encode_instruction("bne", 5, 0, -20),
        encode_instruction("ebreak"),
    ]

    def _promoted(self):
        executor, hart, memory = make_executor(
            self.WORDS, regs={5: 400, 20: 0x123, 21: DATA}, threshold=64
        )
        memory.write(DATA, 8, 777)
        run_to_trap(executor)
        assert executor.tier2_blocks > 0
        assert executor._t2_spec, "promotion did not speculate — vacuous"
        return executor, hart, memory

    def test_exact_value_deopt_prunes_and_stays_correct(self):
        executor, hart, memory = self._promoted()
        deopts_before = executor.tier2_deopts
        hart.pc = BASE
        hart.regs[5] = 400
        hart.regs[20] = 0x999          # violates the pinned exact value
        run_to_trap(executor)
        assert executor.tier2_deopts > deopts_before
        assert 20 in executor._t2_nospec.get(BASE, set())
        assert hart.regs[8] == 0x999 + 1 + 777
        assert memory.read(DATA + 8, 8) == 0x999 + 1 + 777

    def test_repromotion_after_pruning_converges(self):
        executor, hart, memory = self._promoted()
        # Alternate the speculated value; after pruning, re-promotion must
        # stop guarding on x20 and the deopt count must stop growing.
        for value in (0x999, 0x123, 0x999, 0x123, 0x999, 0x123):
            hart.pc = BASE
            hart.regs[5] = 400
            hart.regs[20] = value
            run_to_trap(executor)
            assert hart.regs[8] == value + 1 + 777
        settled = executor.tier2_deopts
        for value in (0x123, 0x999, 0x123):
            hart.pc = BASE
            hart.regs[5] = 400
            hart.regs[20] = value
            run_to_trap(executor)
        assert executor.tier2_deopts == settled, \
            "deopts kept firing: pruning did not converge"

    def test_hook_registration_deopts_compiled_lanes(self):
        executor, hart, memory = self._promoted()
        deopts_before = executor.tier2_deopts
        # A new MMIO hook anywhere invalidates the compile-time "no hook at
        # this address" proof; the hook-generation entry guard must fire.
        seen = []
        memory.add_read_hook(0x4000_1000, lambda size: seen.append(size) or 0)
        hart.pc = BASE
        hart.regs[5] = 400
        run_to_trap(executor)
        assert executor.tier2_deopts > deopts_before
        assert hart.regs[8] == 0x123 + 1 + 777

    def test_tier1_fallback_result_is_exact_on_guard_failure(self):
        # The deopt must happen *before* any state change: a run entered
        # with violating values retires exactly as many instructions as a
        # fresh executor would.
        executor, hart, memory = self._promoted()
        hart.pc = BASE
        hart.regs[5] = 400
        hart.regs[20] = 0x999
        base_retired = executor.retired
        run_to_trap(executor)
        warm_retired = executor.retired - base_retired

        fresh, fresh_hart, fresh_memory = make_executor(
            self.WORDS, regs={5: 400, 20: 0x999, 21: DATA}, threshold=64
        )
        fresh_memory.write(DATA, 8, 777)
        run_to_trap(fresh)
        assert warm_retired == fresh.retired
        assert list(hart.regs) == list(fresh_hart.regs)


class TestSelfModifyingCode:
    def test_store_into_promoted_block_depromotes(self):
        # Loop stores a new opcode into its own body mid-run: the compiled
        # superblock must be dropped and the new semantics take effect.
        addi_x28_1 = encode_instruction("addi", 28, 28, 1)
        addi_x28_7 = encode_instruction("addi", 28, 28, 7)
        words = [
            addi_x28_1,                                # patched mid-run
            encode_instruction("addi", 5, 5, -1),
            encode_instruction("bne", 5, 0, -8),
            encode_instruction("ebreak"),
        ]
        executor, hart, memory = make_executor(
            words, regs={5: 300, 20: addi_x28_7, 21: BASE}, threshold=64
        )
        run_to_trap(executor)
        assert executor.tier2_blocks > 0
        assert hart.regs[28] == 300
        # Second phase: a store rewrites the loop body, then reruns it.
        patch = [
            encode_instruction("sw", 20, 21, 0),       # code store
            encode_instruction("jalr", 0, 22, 0),      # jump back to loop
        ]
        for index, word in enumerate(patch):
            memory.write(BASE + 0x100 + 4 * index, 4, word)
        hart.pc = BASE + 0x100
        hart.regs[5] = 10
        hart.regs[22] = BASE
        hart.regs[28] = 0
        run_to_trap(executor)
        assert not executor._tier2, "stale compiled superblock survived SMC"
        assert hart.regs[28] == 70  # 10 iterations of the *new* body

    def test_smc_then_reheat_repromotes_new_code(self):
        words = [
            encode_instruction("addi", 28, 28, 1),
            encode_instruction("addi", 5, 5, -1),
            encode_instruction("bne", 5, 0, -8),
            encode_instruction("ebreak"),
        ]
        executor, hart, memory = make_executor(
            words, regs={5: 300}, threshold=64
        )
        run_to_trap(executor)
        assert executor.tier2_blocks > 0
        blocks_before = executor.tier2_blocks
        patch = [
            encode_instruction("sw", 20, 21, 0),
            encode_instruction("jalr", 0, 22, 0),
        ]
        for index, word in enumerate(patch):
            memory.write(BASE + 0x100 + 4 * index, 4, word)
        hart.pc = BASE + 0x100
        hart.regs[5] = 300
        hart.regs[20] = encode_instruction("addi", 28, 28, 2)
        hart.regs[21] = BASE
        hart.regs[22] = BASE
        hart.regs[28] = 0
        run_to_trap(executor)
        assert hart.regs[28] == 600
        assert executor.tier2_blocks > blocks_before, \
            "rewritten loop never re-promoted"


class TestRunStepEquivalence:
    def test_run_matches_step_with_tier2(self):
        words = [
            encode_instruction("add", 6, 20, 21),
            encode_instruction("sll", 7, 6, 22),
            encode_instruction("sd", 7, 23, 0),
            encode_instruction("ld", 8, 23, 0),
            encode_instruction("add", 28, 28, 8),
            encode_instruction("addi", 5, 5, -1),
            encode_instruction("bne", 5, 0, -24),
            encode_instruction("ebreak"),
        ]
        regs = {5: 200, 20: 5, 21: 9, 22: 3, 23: DATA}

        run_ex, run_hart, _ = make_executor(words, regs=regs, threshold=32)
        run_to_trap(run_ex)
        assert run_ex.tier2_blocks > 0

        step_ex, step_hart, _ = make_executor(words, regs=regs, threshold=32)
        with pytest.raises(TrapError):
            while True:
                step_ex.step()
        assert list(run_hart.regs) == list(step_hart.regs)
        assert run_ex.retired == step_ex.retired


def _build(kind, num_samples, seed, vectors=None):
    from repro.testgen.config import TestProgramConfig
    from repro.testgen.generator import build_test_program

    config = TestProgramConfig(solution=kind, num_samples=num_samples, seed=seed)
    return config, build_test_program(config, vectors=vectors)


class TestBatchRunner:
    def test_batch_200_sample_bit_identity(self):
        # The acceptance case: 200 software-kernel samples through a warm
        # runner (second acquire = warm hit) must match a cold build+run
        # sample for sample, including retire counts and cycle samples.
        from repro.core.solution import standard_solutions
        from repro.testgen.config import SolutionKind
        from repro.testgen.generator import draw_vectors

        solution = standard_solutions()[SolutionKind.SOFTWARE]
        runner = BatchRunner()
        for seed in (2018, 31337):
            vectors = draw_vectors(200, seed)
            config, cold_program = _build(
                SolutionKind.SOFTWARE, 200, seed, vectors=vectors
            )
            cold_sim = SpikeSimulator(cold_program.image)
            cold = cold_sim.run()
            program, warm = runner.run_functional(solution, config, vectors)
            assert cold_program.read_results(cold) == program.read_results(warm)
            assert (cold_program.read_cycle_samples(cold)
                    == program.read_cycle_samples(warm))
            assert cold.instructions_retired == warm.instructions_retired
            assert cold.exit_code == warm.exit_code
        assert runner.hits == 1 and runner.misses == 1

    def test_warm_acquire_image_matches_fresh_build(self):
        from repro.core.solution import standard_solutions
        from repro.testgen.config import SolutionKind
        from repro.testgen.generator import draw_vectors

        solution = standard_solutions()[SolutionKind.METHOD1]
        runner = BatchRunner()
        for seed in (1, 2):
            vectors = draw_vectors(25, seed)
            config, fresh = _build(SolutionKind.METHOD1, 25, seed, vectors=vectors)
            program, _ = runner.acquire(solution, config, vectors)
            assert fresh.image.symbols == program.image.symbols
            for name, (base, data) in fresh.image.segments.items():
                warm_base, warm_data = program.image.segments[name]
                assert warm_base == base
                assert bytes(warm_data) == bytes(data), f"{name} segment differs"
            assert fresh.operand_words == program.operand_words

    def test_rebind_rejects_wrong_shape(self):
        from repro.errors import ConfigurationError
        from repro.testgen.config import SolutionKind
        from repro.testgen.generator import draw_vectors

        _, program = _build(SolutionKind.SOFTWARE, 10, 2018)
        with pytest.raises(ConfigurationError):
            program.rebind(draw_vectors(11, 2018))

    def test_scratch_span_covers_result_buffers(self):
        from repro.testgen.config import SolutionKind

        _, program = _build(SolutionKind.SOFTWARE, 10, 2018)
        start, size = program.scratch_span()
        symbols = program.image.symbols
        assert start == symbols["results"]
        assert start + size == symbols["total_cycles"] + 8
        assert symbols["cycle_samples"] in range(start, start + size)
        assert symbols["num_samples"] >= start + size

    def test_spike_reset_rerun_is_identical(self):
        from repro.testgen.config import SolutionKind

        _, program = _build(SolutionKind.SOFTWARE, 30, 2018)
        simulator = SpikeSimulator(program.image)
        first = simulator.run()
        first_words = program.read_results(first)
        first_retired = first.instructions_retired
        for _ in range(2):
            simulator.reset()
            again = simulator.run()
            assert program.read_results(again) == first_words
            assert again.instructions_retired == first_retired
            assert again.exit_code == first.exit_code

    def test_eviction_caps_live_simulators(self):
        from repro.core.solution import standard_solutions
        from repro.testgen.config import SolutionKind
        from repro.testgen.generator import draw_vectors

        solution = standard_solutions()[SolutionKind.SOFTWARE]
        runner = BatchRunner(max_entries=2)
        for samples in (3, 4, 5, 6):
            vectors = draw_vectors(samples, 2018)
            config, _ = _build(SolutionKind.SOFTWARE, samples, 2018,
                               vectors=vectors)
            runner.run_functional(solution, config, vectors)
        assert len(runner._entries) == 2
        assert runner.misses == 4

    def test_max_entries_below_one_rejected(self):
        from repro.errors import ConfigurationError

        for bad in (0, -1):
            with pytest.raises(ConfigurationError):
                BatchRunner(max_entries=bad)
        assert BatchRunner(max_entries=1).max_entries == 1

    def test_clear_resets_stats(self):
        from repro.core.solution import standard_solutions
        from repro.testgen.config import SolutionKind
        from repro.testgen.generator import draw_vectors

        solution = standard_solutions()[SolutionKind.SOFTWARE]
        runner = BatchRunner()
        vectors = draw_vectors(5, 2018)
        config, _ = _build(SolutionKind.SOFTWARE, 5, 2018, vectors=vectors)
        runner.run_functional(solution, config, vectors)
        runner.run_functional(solution, config, vectors)
        assert runner.hits == 1 and runner.misses == 1
        runner.clear()
        assert runner.hits == 0 and runner.misses == 0
        assert not runner._entries
        runner.run_functional(solution, config, vectors)
        runner.reset_stats()
        assert runner.hits == 0 and runner.misses == 0
        assert runner._entries  # reset_stats keeps the warm simulators

    def test_key_omits_vector_provenance_safely(self):
        # ``BatchRunner._key`` deliberately omits ``workload``,
        # ``operand_classes`` and ``seed``: those fields only select the
        # operand *vectors*, which every warm hit rebinds anyway.  Pin the
        # safety argument: two configs differing only in vector provenance
        # share a key, and the warm-hit image after rebinding is
        # byte-identical to a cold build over the same vectors.
        from repro.core.solution import standard_solutions
        from repro.testgen.config import SolutionKind, TestProgramConfig
        from repro.testgen.generator import build_test_program, generate_vectors

        solution = standard_solutions()[SolutionKind.SOFTWARE]
        mix_config = TestProgramConfig(
            solution=SolutionKind.SOFTWARE, num_samples=12, seed=2018
        )
        workload_config = TestProgramConfig(
            solution=SolutionKind.SOFTWARE, num_samples=12, seed=99,
            workload="telco-billing",
        )
        assert (BatchRunner._key(solution, mix_config)
                == BatchRunner._key(solution, workload_config))

        runner = BatchRunner()
        mix_vectors = generate_vectors(mix_config)
        runner.run_functional(solution, mix_config, mix_vectors)
        workload_vectors = generate_vectors(workload_config)
        program, _ = runner.run_functional(
            solution, workload_config, workload_vectors
        )
        assert runner.hits == 1 and runner.misses == 1
        cold = build_test_program(workload_config, vectors=workload_vectors)
        for name, (base, data) in cold.image.segments.items():
            warm_base, warm_data = program.image.segments[name]
            assert warm_base == base
            assert bytes(warm_data) == bytes(data), f"{name} segment differs"

        # Fields that change the generated text DO key: a different sample
        # count or solution kind must miss.
        other = TestProgramConfig(
            solution=SolutionKind.SOFTWARE, num_samples=13, seed=2018
        )
        assert (BatchRunner._key(solution, mix_config)
                != BatchRunner._key(solution, other))


class TestCampaignWarmWorkers:
    def test_workers_with_warm_runners_match_cold_serial(self):
        # The campaign engine hands every worker a per-process BatchRunner;
        # the merged report must still equal the cold serial path exactly.
        from repro.core.campaign import run_campaign, table_iv_cells
        from repro.core.evaluation import run_solution_shard
        from repro.core.results import merge_shard_reports

        cells = table_iv_cells(num_samples=12)
        cold = []
        for cell in cells:
            outcome = run_solution_shard(
                cell.solution,
                cell.generate_vectors(),
                operand_classes=cell.operand_classes,
                seed=cell.seed,
                rocket_config=cell.rocket_config,
                workload=cell.workload,
                fmt=cell.fmt,
            )
            cold.append(merge_shard_reports(
                solution_name=cell.solution.name,
                solution_kind=cell.solution.kind,
                shards=[outcome.shard_report],
                repetitions=cell.repetitions,
            ))
        result = run_campaign(table_iv_cells(num_samples=12), workers=2)
        for cold_report, warm_report in zip(cold, result.reports):
            assert cold_report.per_sample_cycles == warm_report.per_sample_cycles
            assert (cold_report.instructions_retired
                    == warm_report.instructions_retired)
            assert cold_report.avg_total_cycles == warm_report.avg_total_cycles
            assert cold_report.rocc_commands == warm_report.rocc_commands

    def test_sharded_cell_reuses_runner_within_worker(self):
        # Serial in-process campaign: every shard goes through the same
        # module-level runner, so same-shape shards hit the warm cache.
        import repro.core.campaign as campaign_mod
        from repro.core.campaign import run_campaign, table_iv_cells

        campaign_mod._SHARD_RUNNER = None
        try:
            run_campaign(table_iv_cells(num_samples=8,
                                        kinds=("software",)),
                         workers=1, shards_per_cell=2)
            runner = campaign_mod._SHARD_RUNNER
            assert runner is not None
            assert runner.hits + runner.misses == 2
            assert runner.hits >= 1, "same-shape shards did not reuse the cache"
        finally:
            campaign_mod._SHARD_RUNNER = None


# --------------------------------------------------------------------------
# RoCC lockstep: the compiled tier must stay bit-identical when the
# instruction stream interleaves accelerator commands with different funct
# codes.  ``rocc`` is a tier-2 trace stopper, so every superblock ends at
# the next accelerator command and re-enters tier 1 for the command itself;
# these tests pin down that the hand-off preserves response values, the
# status carry/borrow chain and the accelerator's architectural state.

BCD_A = 0x0123456789012345
BCD_B = 0x0864197532086419


def _run_rocc_image(image, threshold):
    """Run ``image`` with a fresh accelerator; return (observable state, executor)."""
    from repro.rocc.decimal_accel import DecimalAccelerator

    accelerator = DecimalAccelerator()
    simulator = SpikeSimulator(image, accelerator=accelerator)
    simulator.executor.promote_threshold = threshold
    result = simulator.run()
    state = (
        result.read_dwords("out", 8),
        result.instructions_retired,
        accelerator.accumulator,
        accelerator.status,
        [accelerator.regfile.read(i)
         for i in range(accelerator.config.num_registers)],
    )
    return state, simulator.executor


def _assert_rocc_lockstep(image):
    """Tier-1-only vs tier-2-forced runs of a RoCC program agree exactly."""
    state1, ex1 = _run_rocc_image(image, threshold=0)
    state2, ex2 = _run_rocc_image(image, threshold=16)
    assert ex1.tier2_blocks == 0
    assert ex2.tier2_blocks > 0, "tier 2 never engaged — test is vacuous"
    assert state1 == state2
    return state1


class TestRoccLockstep:
    def _finish(self, b):
        from repro.asm.program import TOHOST_ADDRESS

        b.li("t5", TOHOST_ADDRESS)
        b.li("t6", 1)
        b.emit("sd", "t6", "t5", 0)
        b.label("spin")
        b.j("spin")
        return b.link()

    def test_interleaved_funct_codes(self):
        # One hot loop cycling through seven funct codes — value-mode
        # chunked add/sub (status-chained carry), register-file writes, a
        # register-mode wide add, the fused accumulate (DEC_FMA_ACC, which
        # no kernel emits), the shift-accumulate and status readback.
        from repro.asm.builder import AsmBuilder
        from repro.rocc.decimal_accel import (
            ACC_HI_SELECTOR,
            ACC_LO_SELECTOR,
            STATUS_SELECTOR,
        )

        b = AsmBuilder()
        b.data()
        b.label("out")
        b.dword(*([0] * 8))
        b.text()
        b.label("_start")
        b.la("a5", "out")
        b.li("s0", BCD_A)
        b.li("s1", BCD_B)
        b.li("s2", 3)  # DEC_FMA_ACC shift in digits, passed by value
        b.li("s3", 0)  # checksum over every response word
        b.li("t0", 60)
        b.label("loop")
        b.rocc("DEC_ADDC", rd="a0", rs1="s0", rs2="s1",
               xd=True, xs1=True, xs2=True)
        b.emit("add", "s3", "s3", "a0")
        b.rocc("DEC_SUBB", rd="a1", rs1="s1", rs2="s0",
               xd=True, xs1=True, xs2=True)
        b.emit("xor", "s3", "s3", "a1")
        b.rocc("WR", rd=0, rs1="s0", rs2=1, xs1=True)
        b.rocc("WR", rd=0, rs1="a0", rs2=2, xs1=True)
        b.rocc("DEC_ADD", rd=3, rs1=1, rs2=2)
        b.rocc("DEC_FMA_ACC", rd="a2", rs1=3, rs2="s2", xd=True, xs2=True)
        b.emit("add", "s3", "s3", "a2")
        b.rocc("DEC_ACCUM", rd=0, rs1=1, rs2=0)
        b.rocc("RD", rd="a3", rs2=STATUS_SELECTOR, xd=True)
        b.emit("add", "s3", "s3", "a3")
        b.emit("addi", "t0", "t0", -1)
        b.bnez("t0", "loop")
        b.emit("sd", "s3", "a5", 0)
        b.rocc("RD", rd="a0", rs2=ACC_LO_SELECTOR, xd=True)
        b.emit("sd", "a0", "a5", 8)
        b.rocc("RD", rd="a1", rs2=ACC_HI_SELECTOR, xd=True)
        b.emit("sd", "a1", "a5", 16)
        b.rocc("RD", rd="a2", rs2=STATUS_SELECTOR, xd=True)
        b.emit("sd", "a2", "a5", 24)
        b.rocc("RD", rd="a3", rs2=3, xd=True)
        b.emit("sd", "a3", "a5", 32)
        image = self._finish(b)
        _assert_rocc_lockstep(image)

    def test_chunked_carry_chain_matches_bigint(self):
        # The kernels' wadd/wsub shape: stream a 4-word BCD number through
        # DEC_ADDC word by word with the carry living in status bit 0, in a
        # hot loop so the surrounding load/store blocks compile to tier 2.
        # Besides lockstep, check the chained result against a big-integer
        # decimal model of the same words.
        from repro.asm.builder import AsmBuilder

        x_words = [0x9999999999999999, 0x0000000000000001,
                   BCD_A, 0x0000000000000042]
        y_words = [0x0000000000000001, 0x9999999999999998,
                   BCD_B, 0x0000000000000007]

        b = AsmBuilder()
        b.data()
        b.label("out")
        b.dword(*([0] * 8))
        b.label("x")
        b.dword(*x_words)
        b.label("y")
        b.dword(*y_words)
        b.text()
        b.label("_start")
        b.la("a5", "out")
        b.la("a3", "x")
        b.la("a4", "y")
        b.li("t0", 40)
        b.label("loop")
        b.rocc("CLR_ALL")  # carry chain starts clean every pass
        for w in range(4):
            b.emit("ld", "t1", "a3", 8 * w)
            b.emit("ld", "t2", "a4", 8 * w)
            b.rocc("DEC_ADDC", rd="t3", rs1="t1", rs2="t2",
                   xd=True, xs1=True, xs2=True)
            b.emit("sd", "t3", "a5", 8 * w)
        b.emit("addi", "t0", "t0", -1)
        b.bnez("t0", "loop")
        image = self._finish(b)
        state = _assert_rocc_lockstep(image)

        def to_int(words):
            return int("".join(f"{w:016x}" for w in reversed(words)))

        total = to_int(x_words) + to_int(y_words)
        expected = [int(f"{(total // 10 ** (16 * w)) % 10 ** 16:016d}", 16)
                    for w in range(4)]
        assert state[0][:4] == expected
