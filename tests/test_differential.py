"""Cross-model differential verification tests.

Covers the co-simulation harness (spike/rocket/gem5 agreement over every
solution kind and built-in workload), the differential campaign-cell mode
(serial and sharded-multiprocess paths, reporting, CLI exit codes), and the
headline acceptance property: an intentionally injected, model-specific
executor bug is *caught* by the fuzz campaign, *shrunk* to a <=3-vector
reproducer, and *replays* from its recorded seed — then stops reproducing
once the bug is gone.
"""

from __future__ import annotations

import pytest

import repro.gem5.atomic_cpu as atomic_cpu
from repro.core.campaign import run_campaign, table_iv_cells, workload_cells
from repro.core.evaluation import run_solution_shard
from repro.core.solution import standard_solutions
from repro.core import reporting
from repro.sim.memory import SparseMemory
from repro.testgen.config import SolutionKind
from repro.verification.coverage import CoverageTracker
from repro.verification.database import OperandClass, VerificationDatabase
from repro.verification.differential import (
    MODELS,
    CoSimulator,
    Divergence,
    DualCheckReport,
)
from repro.workloads import registered_workloads


def _vectors(count=24, seed=13, classes=OperandClass.ALL):
    return VerificationDatabase(seed).generate_mix(count, classes)


class _BitFlipMemory(SparseMemory):
    """Injected bug: corrupts bit 0 of dword stores whose value has bit 1 set.

    Patched into the gem5 model only, so the corruption is model-specific
    and shows up as a cross-model divergence (spike/rocket agree, gem5
    does not) — the scenario the differential engine exists to catch.
    """

    def write(self, address, size, value):
        if size == 8 and value & 0x2:
            value ^= 1
        super().write(address, size, value)


@pytest.fixture
def broken_gem5(monkeypatch):
    monkeypatch.setattr(atomic_cpu, "SparseMemory", _BitFlipMemory)


# ------------------------------------------------------------------ co-simulator
@pytest.mark.parametrize("kind", SolutionKind.ALL)
def test_models_agree_for_every_solution_kind(kind):
    report = CoSimulator(solution=kind).co_simulate(_vectors())
    assert report.models == MODELS
    assert report.total == 24
    assert report.all_agree
    assert not report.failed
    assert report.first_divergence is None
    solution = standard_solutions()[kind]
    if solution.verifiable:
        assert isinstance(report.check_report, DualCheckReport)
        assert report.check_report.all_passed
    else:
        assert report.check_report is None


def test_model_runs_capture_cycles_and_per_vector_samples():
    report = CoSimulator(solution=SolutionKind.METHOD1).co_simulate(
        _vectors(count=10)
    )
    rocket = report.runs["rocket"]
    assert rocket.cycles > 0
    assert len(rocket.cycle_samples) == 10
    gem5 = report.runs["gem5"]
    assert gem5.cycles > 0
    assert report.runs["spike"].cycles is None
    summary = report.cycle_summary()
    assert set(summary) == {"rocket", "gem5"}
    assert all(run.exit_code == 0 for run in report.runs.values())
    assert "all models agree" in report.describe()


@pytest.mark.parametrize("name", sorted(registered_workloads()))
def test_models_agree_on_every_builtin_workload(name):
    # Run each workload under the first operation it declares, so op-scoped
    # scenarios (e.g. the fma-only mac-chain) are exercised as themselves.
    workload = registered_workloads()[name]
    operation = workload.operations[0]
    kwargs = {} if operation == "multiply" else {"operation": operation}
    vectors = workload.vectors(20, seed=3, **kwargs)
    report = CoSimulator(
        solution=SolutionKind.METHOD1, workload=name, operation=operation
    ).co_simulate(vectors, seed=3)
    assert report.all_agree
    assert not report.failed
    assert report.workload == name
    assert report.operation == operation


def test_model_subset_and_unknown_model():
    from repro.errors import ConfigurationError

    report = CoSimulator(
        solution=SolutionKind.METHOD1, models=("spike", "rocket")
    ).co_simulate(_vectors(count=6))
    assert report.models == ("spike", "rocket")
    assert report.all_agree
    with pytest.raises(ConfigurationError, match="unknown model"):
        CoSimulator(models=("spike", "verilator"))
    with pytest.raises(ConfigurationError, match="at least one model"):
        CoSimulator(models=())
    with pytest.raises(ConfigurationError, match="unknown solution kind"):
        CoSimulator(solution="hardware2")


def test_cosimulator_pinpoints_divergence_and_operand_class(broken_gem5):
    vectors = _vectors(count=30, seed=21)
    report = CoSimulator(solution=SolutionKind.METHOD1).co_simulate(vectors)
    assert not report.all_agree
    assert report.failed
    first = report.first_divergence
    assert isinstance(first, Divergence)
    # The diverging vector is pinpointed with its class and per-model words.
    assert first.operand_class == vectors[first.index].operand_class
    assert first.disagreeing_models() == ("gem5",)
    assert set(first.words) == set(MODELS)
    assert first.words["spike"] == first.words["rocket"] != first.words["gem5"]
    assert "gem5=" in first.describe()
    assert str(first.index) in report.describe()


def test_dual_checker_respects_custom_workload_oracles():
    """A workload overriding expected() defines its own correctness; the
    stdlib cross-check only applies to the golden-default oracle, so such
    workloads keep a single-oracle checker (no spurious disagreements)."""
    from repro.verification.differential import (
        DualOracleChecker,
        dual_checker_for_workload,
    )
    from repro.workloads import Workload, register, unregister

    class CustomOracle(Workload):
        name = "custom-oracle-test"
        description = "domain oracle for dual-checker routing test"

        def pair(self, rng, index):
            from repro.decnumber.number import DecNumber

            return DecNumber(0, 1, 0), DecNumber(0, 1, 0)

        def expected(self, x, y):
            return self._reference().compute(x, y)

    register(CustomOracle())
    try:
        custom = dual_checker_for_workload("custom-oracle-test")
        assert not isinstance(custom, DualOracleChecker)
        # Built-ins use the default golden oracle and get the dual checker.
        builtin = dual_checker_for_workload("telco-billing")
        assert isinstance(builtin, DualOracleChecker)
        # Unknown names (spawn-worker fallback) also keep the dual checker.
        assert isinstance(dual_checker_for_workload(None), DualOracleChecker)
    finally:
        unregister("custom-oracle-test")


# --------------------------------------------------------- differential shards
def test_run_solution_shard_differential_records_instead_of_raising(broken_gem5):
    solution = standard_solutions()[SolutionKind.METHOD1]
    vectors = _vectors(count=30, seed=21)
    outcome = run_solution_shard(solution, vectors, differential=True)
    report = outcome.shard_report
    assert report.differential
    assert report.models == MODELS
    assert report.divergences > 0
    assert report.first_divergence
    assert report.gem5_cycles > 0
    # The spike-vs-oracle check still passed: the bug is gem5-only.
    assert report.check_failed == 0
    assert report.oracle_disagreements == 0


def test_run_solution_shard_differential_records_check_failures():
    """A bug present in *all* models produces no divergence but is caught
    by the dual-oracle check — and recorded, not raised, in differential
    mode."""
    import repro.sim.spike as spike_module
    import repro.rocket.core as rocket_module

    solution = standard_solutions()[SolutionKind.METHOD1]
    vectors = _vectors(count=12, seed=21)
    with pytest.MonkeyPatch.context() as patcher:
        patcher.setattr(atomic_cpu, "SparseMemory", _BitFlipMemory)
        patcher.setattr(spike_module, "SparseMemory", _BitFlipMemory)
        patcher.setattr(rocket_module, "SparseMemory", _BitFlipMemory)
        outcome = run_solution_shard(solution, vectors, differential=True)
    report = outcome.shard_report
    assert report.divergences == 0          # all models equally wrong
    assert report.check_failed > 0          # ...but the oracle knows
    assert not outcome.check_report.all_passed


def test_differential_shard_condition_coverage_matches_tracker():
    solution = standard_solutions()[SolutionKind.METHOD1]
    vectors = _vectors(count=20, seed=5)
    outcome = run_solution_shard(solution, vectors, differential=True)
    tracker = CoverageTracker()
    tracker.record_all(vectors)
    assert outcome.shard_report.condition_coverage == dict(
        tracker.condition_counts
    )


# ------------------------------------------------------- differential campaigns
def test_differential_campaign_serial_and_sharded_agree():
    cells = table_iv_cells(
        num_samples=24, kinds=(SolutionKind.METHOD1, SolutionKind.SOFTWARE),
        differential=True,
    )
    serial = run_campaign(cells, workers=1)
    assert serial.differential
    assert serial.differential_clean
    assert serial.total_divergences == 0
    for report in serial.reports:
        assert report.differential
        assert report.models == MODELS
        assert report.conditions_covered > 0
        assert report.gem5_cycles > 0
    sharded = run_campaign(cells, workers=2, shards_per_cell=2)
    assert sharded.differential_clean
    for merged, single in zip(sharded.reports, serial.reports):
        assert merged.num_shards == 2
        assert merged.condition_coverage == single.condition_coverage
        assert merged.divergences == 0
    summary = sharded.to_summary()
    assert summary["differential"]["divergences"] == 0
    assert summary["cells"][0]["differential"]["models"] == list(MODELS)


def test_differential_campaign_counts_divergences_per_cell(broken_gem5):
    cells = table_iv_cells(
        num_samples=20, kinds=(SolutionKind.METHOD1,), differential=True,
    )
    result = run_campaign(cells, workers=1)
    assert not result.differential_clean
    assert result.total_divergences > 0
    report = result.reports[0]
    assert report.first_divergence
    rendered = reporting.render_differential(result)
    assert "first divergences:" in rendered
    assert "method1 [diff]" in rendered


def test_differential_workload_cells_cover_the_grid():
    cells = workload_cells(
        ("telco-billing", "carry-stress"),
        num_samples=10,
        kinds=(SolutionKind.METHOD1,),
        differential=True,
    )
    assert [cell.label for cell in cells] == [
        "method1 @ telco-billing [diff]",
        "method1 @ carry-stress [diff]",
    ]
    result = run_campaign(cells, workers=1)
    assert result.differential_clean


def test_render_differential_without_differential_cells():
    cells = table_iv_cells(num_samples=5, kinds=(SolutionKind.METHOD1,))
    result = run_campaign(cells, workers=1)
    assert (
        reporting.render_differential(result)
        == "Differential campaign: no differential cells"
    )


# ------------------------------------------------------------------- CLI paths
def test_campaign_cli_differential_exits_zero_when_clean(capsys):
    from repro.campaign import main

    code = main([
        "--samples", "10", "--workers", "1", "--differential",
        "--kinds", "method1",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "Differential campaign: 0 divergence(s)" in out
    assert "conditions covered across cells" in out


def test_campaign_cli_differential_exits_nonzero_on_divergence(
    broken_gem5, capsys
):
    from repro.campaign import main

    code = main([
        "--samples", "20", "--workers", "1", "--differential",
        "--kinds", "method1",
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "first divergences:" in out


# --------------------------------------------------- acceptance: catch & shrink
def test_injected_bug_is_caught_shrunk_and_replays(broken_gem5, monkeypatch):
    """The headline property: a model-specific executor bug injected via
    monkeypatch is caught by a fuzz campaign, shrunk to a <=3-vector
    reproducer, replays from its recorded seed while the bug is present,
    and stops reproducing once the bug is fixed."""
    from repro.fuzz import FuzzCampaign, FuzzConfig, Reproducer, replay

    config = FuzzConfig(seed=7, budget=96, batch_size=32, max_failures=1)
    report = FuzzCampaign(config).run()
    assert not report.ok
    assert len(report.failures) == 1
    failure = report.failures[0]
    assert failure.kind == "divergence"
    assert failure.campaign_seed == 7
    assert failure.original_count >= 1
    assert len(failure.vectors) <= 3          # shrunk to a minimal reproducer
    assert "gem5=" in failure.description

    # Replays from the recorded seed while the bug is still present...
    replayed = replay(failure)
    assert replayed.failed
    assert not replayed.all_agree

    # ...round-trips through JSON (how --json reports store reproducers)...
    restored = Reproducer.from_json(failure.to_json())
    assert restored.vectors == failure.vectors
    assert restored.campaign_seed == failure.campaign_seed
    assert replay(restored).failed

    # ...and stops failing once the bug is gone.
    monkeypatch.undo()
    fixed = replay(failure)
    assert not fixed.failed
    assert fixed.all_agree
