"""Tests for the hardware component models and the RoCC decimal accelerator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.decnumber.bcd import bcd_to_int, int_to_bcd
from repro.errors import AcceleratorError
from repro.hw.bcd_adder import BcdCarryLookaheadAdder
from repro.hw.bcd_multiplier import BcdMultiplier
from repro.hw.binary_to_bcd import BinaryToBcdConverter
from repro.hw.cost import AreaReport, GateCost, register_cost
from repro.isa.rocc import DecimalFunct
from repro.rocc.decimal_accel import (
    ACC_HI_SELECTOR,
    ACC_LO_SELECTOR,
    STATUS_SELECTOR,
    DecimalAccelerator,
    DecimalAcceleratorConfig,
)
from repro.rocc.fsm import FsmState, InterfaceFsm
from repro.rocc.interface import RoccCommand
from repro.rocc.regfile import AcceleratorRegisterFile


# ---------------------------------------------------------------------------
# BCD adder / multiplier / converter
# ---------------------------------------------------------------------------
class TestBcdAdder:
    @given(st.integers(0, 10 ** 16 - 1), st.integers(0, 10 ** 16 - 1))
    @settings(max_examples=200, deadline=None)
    def test_addition_matches_integer_reference(self, a, b):
        adder = BcdCarryLookaheadAdder(width_digits=16)
        result = adder.add(int_to_bcd(a), int_to_bcd(b))
        expected = a + b
        assert bcd_to_int(result.value) == expected % 10 ** 16
        assert result.carry_out == (1 if expected >= 10 ** 16 else 0)

    def test_carry_in(self):
        adder = BcdCarryLookaheadAdder(width_digits=4)
        result = adder.add(int_to_bcd(9999), int_to_bcd(0), carry_in=1)
        assert bcd_to_int(result.value) == 0 and result.carry_out == 1

    def test_rejects_invalid_bcd_and_wide_operands(self):
        adder = BcdCarryLookaheadAdder(width_digits=4)
        with pytest.raises(AcceleratorError):
            adder.add(0xA, 0)
        with pytest.raises(AcceleratorError):
            adder.add(int_to_bcd(12345), 0)

    def test_cost_scales_with_width(self):
        small = BcdCarryLookaheadAdder(width_digits=8).cost()
        large = BcdCarryLookaheadAdder(width_digits=32).cost()
        assert large.gate_equivalents > small.gate_equivalents
        assert large.logic_levels >= small.logic_levels


class TestBcdMultiplierAndConverter:
    @given(st.integers(0, 10 ** 16 - 1), st.integers(0, 10 ** 16 - 1))
    @settings(max_examples=50, deadline=None)
    def test_multiplier_matches_reference(self, a, b):
        multiplier = BcdMultiplier(operand_digits=16)
        result = multiplier.multiply(int_to_bcd(a), int_to_bcd(b))
        assert bcd_to_int(result.value) == a * b
        assert result.cycles > 16

    def test_multiplier_rejects_wide_operand(self):
        with pytest.raises(AcceleratorError):
            BcdMultiplier(operand_digits=4).multiply(int_to_bcd(123456), 0)

    @given(st.integers(0, 10 ** 19))
    @settings(max_examples=100, deadline=None)
    def test_converter_matches_reference(self, value):
        converter = BinaryToBcdConverter(input_bits=64, output_digits=20)
        result = converter.convert(value)
        assert bcd_to_int(result.value) == value
        assert result.cycles == 64

    def test_converter_range_checks(self):
        converter = BinaryToBcdConverter(input_bits=8, output_digits=2)
        with pytest.raises(AcceleratorError):
            converter.convert(256)
        with pytest.raises(AcceleratorError):
            converter.convert(130)  # needs 3 digits

    def test_cost_reports(self):
        report = BcdMultiplier().cost()
        assert report.total_gate_equivalents > 0
        assert "TOTAL" in report.render()


class TestCostModel:
    def test_gatecost_addition_and_scaling(self):
        a = GateCost("a", 100.0, 3, flip_flops=10)
        b = GateCost("b", 50.0, 5, flip_flops=2)
        combined = a + b
        assert combined.gate_equivalents == 150.0
        assert combined.logic_levels == 5
        assert a.scaled(3).flip_flops == 30

    def test_area_report_totals(self):
        report = AreaReport()
        report.add(register_cost("regs", 64))
        report.add(GateCost("logic", 123.0, 7))
        assert report.total_flip_flops == 64
        assert report.critical_path_levels == 7
        assert report.as_rows()[-1]["component"] == "TOTAL"


# ---------------------------------------------------------------------------
# Interface FSM and register file
# ---------------------------------------------------------------------------
class TestInterfaceFsm:
    def test_command_with_response_visits_resp_state(self):
        fsm = InterfaceFsm()
        cycles = fsm.run_command(FsmState.READ, respond=True, busy_cycles=1)
        assert cycles >= 3
        assert FsmState.READ_RESP in fsm.visited_states
        assert fsm.state == FsmState.IDLE

    def test_command_without_response(self):
        fsm = InterfaceFsm()
        fsm.run_command(FsmState.DEC_ADD, respond=False, busy_cycles=2)
        assert FsmState.DEC_ADD in fsm.visited_states
        assert FsmState.WRITE_RESP not in fsm.visited_states

    def test_illegal_transition_rejected(self):
        fsm = InterfaceFsm()
        fsm.state = FsmState.READ_RESP
        with pytest.raises(AcceleratorError):
            fsm._go(FsmState.DEC_ADD)

    def test_figure5_states_all_reachable(self):
        fsm = InterfaceFsm()
        for state in (FsmState.READ, FsmState.WRITE, FsmState.CLR_ALL,
                      FsmState.DEC_ADD, FsmState.ACCUM):
            fsm.run_command(state, respond=(state == FsmState.READ))
        assert {FsmState.IDLE, FsmState.READ, FsmState.WRITE, FsmState.CLR_ALL,
                FsmState.DEC_ADD, FsmState.ACCUM,
                FsmState.READ_RESP} <= fsm.visited_states


class TestRegisterFile:
    def test_read_write_clear(self):
        regfile = AcceleratorRegisterFile(num_registers=4, width_bits=16)
        regfile.write(2, 0x12345)
        assert regfile.read(2) == 0x2345  # masked to width
        regfile.clear_all()
        assert regfile.snapshot() == (0, 0, 0, 0)

    def test_bounds(self):
        regfile = AcceleratorRegisterFile(num_registers=4)
        with pytest.raises(AcceleratorError):
            regfile.read(4)
        with pytest.raises(AcceleratorError):
            AcceleratorRegisterFile(num_registers=0)


# ---------------------------------------------------------------------------
# Decimal accelerator
# ---------------------------------------------------------------------------
def _command(funct7, rd=0, rs1=0, rs2=0, rs1_value=0, rs2_value=0,
             xd=False, xs1=False, xs2=False):
    return RoccCommand(funct7=funct7, rd=rd, rs1=rs1, rs2=rs2,
                       rs1_value=rs1_value, rs2_value=rs2_value,
                       xd=xd, xs1=xs1, xs2=xs2)


class TestDecimalAccelerator:
    def test_write_then_read(self, accelerator):
        accelerator.execute_command(
            _command(DecimalFunct.WR, rs1_value=0x1234, rs2=3, xs1=True), None
        )
        result = accelerator.execute_command(
            _command(DecimalFunct.RD, rs2=3, xd=True), None
        )
        assert result.has_response and result.value == 0x1234

    def test_dec_add_core_operands(self, accelerator):
        result = accelerator.execute_command(
            _command(DecimalFunct.DEC_ADD, rs1_value=int_to_bcd(999),
                     rs2_value=int_to_bcd(1), xd=True, xs1=True, xs2=True), None
        )
        assert bcd_to_int(result.value) == 1000

    def test_dec_add_rejects_non_bcd(self, accelerator):
        with pytest.raises(AcceleratorError):
            accelerator.execute_command(
                _command(DecimalFunct.DEC_ADD, rs1_value=0xAB, rs2_value=0,
                         xd=True, xs1=True, xs2=True), None
            )

    def test_method1_sequence_computes_product(self, accelerator):
        """CLR_ALL + WR + 8x DEC_ADD + 16x DEC_ACCUM + 2x RD == X * Y."""
        x, y = 9876543210987654, 8765432109876543
        accelerator.execute_command(_command(DecimalFunct.CLR_ALL), None)
        accelerator.execute_command(
            _command(DecimalFunct.WR, rs1_value=int_to_bcd(x), rs2=1, xs1=True), None
        )
        for index in range(1, 9):
            accelerator.execute_command(
                _command(DecimalFunct.DEC_ADD, rd=index + 1, rs1=index, rs2=1), None
            )
        for position in reversed(range(16)):
            digit = (y // 10 ** position) % 10
            accelerator.execute_command(
                _command(DecimalFunct.DEC_ACCUM, rs1_value=digit, xs1=True), None
            )
        low = accelerator.execute_command(
            _command(DecimalFunct.RD, rs2=ACC_LO_SELECTOR, xd=True), None
        ).value
        high = accelerator.execute_command(
            _command(DecimalFunct.RD, rs2=ACC_HI_SELECTOR, xd=True), None
        ).value
        product = bcd_to_int((high << 64) | low)
        assert product == x * y

    def test_load_from_memory(self, accelerator):
        class FakeMemory:
            def read(self, address, size):
                assert (address, size) == (0x100, 8)
                return 0x55

        accelerator.execute_command(
            _command(DecimalFunct.LD, rs1_value=0x100, rs2=2, xs1=True), FakeMemory()
        )
        assert accelerator.regfile.read(2) == 0x55

    def test_binary_accumulate(self, accelerator):
        accelerator.execute_command(
            _command(DecimalFunct.ACCUM, rd=5, rs1_value=40, xs1=True), None
        )
        result = accelerator.execute_command(
            _command(DecimalFunct.ACCUM, rd=5, rs1_value=2, xs1=True, xd=True), None
        )
        assert result.value == 42

    def test_dec_cnv(self, accelerator):
        result = accelerator.execute_command(
            _command(DecimalFunct.DEC_CNV, rs1_value=987654, xd=True, xs1=True), None
        )
        assert bcd_to_int(result.value) == 987654
        assert result.busy_cycles >= 64

    def test_dec_mul_requires_multiplier_option(self):
        plain = DecimalAccelerator()
        with pytest.raises(AcceleratorError):
            plain.execute_command(
                _command(DecimalFunct.DEC_MUL, rs1_value=0x2, rs2_value=0x3,
                         xs1=True, xs2=True), None
            )
        wide = DecimalAccelerator(DecimalAcceleratorConfig(include_multiplier=True))
        wide.execute_command(
            _command(DecimalFunct.DEC_MUL, rs1_value=int_to_bcd(25),
                     rs2_value=int_to_bcd(4), xs1=True, xs2=True), None
        )
        assert bcd_to_int(wide.accumulator) == 100

    def test_status_register_carry(self, accelerator):
        accelerator.execute_command(
            _command(DecimalFunct.DEC_ADD,
                     rs1_value=int_to_bcd(10 ** 16 - 1) | (0x9999 << 64),
                     rs2_value=1, xd=True, xs1=True, xs2=True), None
        )
        status = accelerator.execute_command(
            _command(DecimalFunct.RD, rs2=STATUS_SELECTOR, xd=True), None
        )
        assert status.value & 1 == 0  # 20-digit operand did not overflow 32 digits

    def test_clear_resets_everything(self, accelerator):
        accelerator.execute_command(
            _command(DecimalFunct.WR, rs1_value=5, rs2=1, xs1=True), None
        )
        accelerator.accumulator = 123
        accelerator.execute_command(_command(DecimalFunct.CLR_ALL), None)
        assert accelerator.accumulator == 0
        assert accelerator.regfile.read(1) == 0

    def test_unknown_function_rejected(self, accelerator):
        with pytest.raises(AcceleratorError):
            accelerator.execute_command(_command(0x7F), None)

    def test_statistics_and_area(self, accelerator):
        accelerator.execute_command(_command(DecimalFunct.CLR_ALL), None)
        assert accelerator.commands_executed >= 0  # adapter not used here
        report = accelerator.area_report()
        assert report.total_gate_equivalents > 1000
        names = [c.name for c in report.components]
        assert any("BCD-CLA" in name for name in names)

    def test_config_validation(self):
        with pytest.raises(AcceleratorError):
            DecimalAcceleratorConfig(register_width_digits=16)
        with pytest.raises(AcceleratorError):
            DecimalAcceleratorConfig(accumulator_digits=20)

    def test_reset(self, accelerator):
        accelerator.execute(
            funct7=DecimalFunct.CLR_ALL, rd=0, rs1=0, rs2=0, rs1_value=0,
            rs2_value=0, xd=False, xs1=False, xs2=False, memory=None,
        )
        assert accelerator.commands_executed == 1
        accelerator.reset()
        assert accelerator.commands_executed == 0
        assert accelerator.fsm.state == FsmState.IDLE
