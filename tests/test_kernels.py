"""Functional verification of the RISC-V kernels against the golden library.

These are the repository's most important integration tests: they run the
generated kernels instruction by instruction on the functional simulator and
compare every result with IEEE 754-2008 decimal64 semantics.
"""

import pytest

from repro.rocc.decimal_accel import DecimalAccelerator
from repro.sim.spike import SpikeSimulator
from repro.testgen.config import SolutionKind, TestProgramConfig
from repro.testgen.generator import build_test_program
from repro.verification.checker import ResultChecker
from repro.verification.database import OperandClass, VerificationDatabase
from repro.verification.reference import GoldenReference


def _run_solution(solution, vectors):
    config = TestProgramConfig(solution=solution, num_samples=len(vectors))
    program = build_test_program(config, vectors=vectors)
    accelerator = DecimalAccelerator() if config.uses_accelerator else None
    result = SpikeSimulator(program.image, accelerator=accelerator).run()
    assert result.exit_code == 0
    return program, result


def _check(solution, vectors):
    program, result = _run_solution(solution, vectors)
    checker = ResultChecker(GoldenReference())
    report = checker.check_run(vectors, program.read_results(result))
    detail = "\n".join(f.describe() for f in report.failures[:5])
    assert report.all_passed, f"{solution}: {report.failed} mismatches\n{detail}"
    return program, result


VERIFIABLE = [SolutionKind.SOFTWARE, SolutionKind.METHOD1]


class TestKernelsPerOperandClass:
    @pytest.mark.parametrize("solution", VERIFIABLE)
    @pytest.mark.parametrize("operand_class", OperandClass.ALL)
    def test_class_correctness(self, solution, operand_class):
        database = VerificationDatabase(seed=hash((solution, operand_class)) & 0xFFFF)
        vectors = database.generate(operand_class, 12)
        _check(solution, vectors)

    @pytest.mark.parametrize("solution", VERIFIABLE)
    def test_table_iv_mix(self, solution):
        database = VerificationDatabase(seed=2018)
        vectors = database.generate_mix(50)
        _check(solution, vectors)


class TestKernelDirectedCases:
    """Hand-picked corner operands exercising specific flow branches."""

    def _vectors(self, pairs):
        from repro.decnumber.number import DecNumber
        from repro.verification.database import VerificationVector

        vectors = []
        for index, (x, y) in enumerate(pairs):
            vectors.append(
                VerificationVector(
                    x=DecNumber.from_string(x), y=DecNumber.from_string(y),
                    operand_class="directed", index=index,
                )
            )
        return vectors

    DIRECTED = [
        ("1", "1"),
        ("0", "123.45"),
        ("-0", "7E+300"),
        ("9999999999999999", "9999999999999999"),       # maximal coefficients
        ("9999999999999999E+369", "10"),                 # overflow to infinity
        ("-9999999999999999E+369", "10"),                # overflow, negative
        ("1E-398", "1E-10"),                             # underflow to zero
        ("5E-398", "0.1"),                               # half ulp: ties to even
        ("15E-398", "0.1"),                              # rounds up in subnormal
        ("123456789E-398", "0.001"),                     # subnormal with digits
        ("7E+300", "8E+60"),                             # fold-down clamp
        ("2", "3E+368"),                                 # clamp by one digit
        ("1234567890123456", "1000000000000001"),        # long exact-ish product
        ("5000000000000000", "2"),                       # carry to 17 digits
        ("Infinity", "-2"),
        ("-Infinity", "-Infinity"),
        ("Infinity", "0"),
        ("NaN123", "5"),
        ("sNaN7", "Infinity"),
        ("0E+100", "0E-200"),
    ]

    @pytest.mark.parametrize("solution", VERIFIABLE)
    def test_directed_vectors(self, solution):
        _check(solution, self._vectors(self.DIRECTED))

    def test_round_half_even_tie(self):
        """A product ending in exactly ...5 with even/odd quotient digits."""
        pairs = [("1000000000000005", "10000000000000"),
                 ("1000000000000015", "10000000000000")]
        for solution in VERIFIABLE:
            _check(solution, self._vectors(pairs))


class TestDummyVariant:
    def test_dummy_kernel_runs_but_is_not_verifiable(self):
        """The dummy-function variant completes (timing-only methodology)."""
        database = VerificationDatabase(seed=3)
        vectors = database.generate_mix(30)
        program, result = _run_solution(SolutionKind.METHOD1_DUMMY, vectors)
        checker = ResultChecker(GoldenReference())
        report = checker.check_run(vectors, program.read_results(result))
        # The flow completes for every sample but the results are meaningless:
        # at least the rounding-class samples must mismatch the golden values.
        assert report.total == 30
        assert report.failed > 0

    def test_dummy_and_real_have_same_software_structure(self):
        """Both Method-1 variants execute the same number of samples and the
        dummy one never touches the accelerator."""
        database = VerificationDatabase(seed=4)
        vectors = database.generate_mix(10)
        _program, result = _run_solution(SolutionKind.METHOD1_DUMMY, vectors)
        assert result.exit_code == 0


class TestAcceleratorStateAcrossSamples:
    def test_accumulator_cleared_between_samples(self):
        """CLR_ALL at the start of each multiplication isolates samples."""
        from repro.decnumber.number import DecNumber
        from repro.verification.database import VerificationVector

        vectors = [
            VerificationVector(DecNumber.from_string("9999999999999999"),
                               DecNumber.from_string("9999999999999999"),
                               "directed", 0),
            VerificationVector(DecNumber.from_string("2"),
                               DecNumber.from_string("3"), "directed", 1),
        ]
        _check(SolutionKind.METHOD1, vectors)

    def test_per_sample_cycles_recorded(self):
        database = VerificationDatabase(seed=5)
        vectors = database.generate_mix(8)
        program, result = _run_solution(SolutionKind.METHOD1, vectors)
        cycles = program.read_cycle_samples(result)
        assert len(cycles) == 8
        assert all(count > 0 for count in cycles)
        assert sum(cycles) == program.read_total_cycles(result)
