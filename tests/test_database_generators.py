"""Unit tests for the VerificationDatabase operand-class generators.

Each generator must actually produce vectors *in its class* — overflow pairs
must overflow, underflow pairs underflow (both subnormal and flush-to-zero),
clamping pairs clamp without overflowing — and ``generate_mix`` must be
deterministic per seed with a platform-independent stream (pinned by digest).
"""

from __future__ import annotations

import hashlib

import pytest

from repro.errors import ConfigurationError
from repro.verification.database import OperandClass, VerificationDatabase
from repro.verification.reference import GoldenReference

COUNT = 120


@pytest.fixture(scope="module")
def reference():
    return GoldenReference()


def _flags(reference, vector):
    return reference.compute(vector.x, vector.y).flags


def _values(reference, vector):
    return reference.compute(vector.x, vector.y).value


def test_overflow_pairs_all_overflow(reference):
    for vector in VerificationDatabase(31).generate(OperandClass.OVERFLOW, COUNT):
        flags = _flags(reference, vector)
        assert "overflow" in flags, f"{vector.x} * {vector.y} did not overflow"
        assert _values(reference, vector).is_infinite


def test_underflow_pairs_all_underflow_both_ways(reference):
    subnormal = zero = 0
    for vector in VerificationDatabase(32).generate(OperandClass.UNDERFLOW, COUNT):
        flags = _flags(reference, vector)
        assert "underflow" in flags, f"{vector.x} * {vector.y} did not underflow"
        value = _values(reference, vector)
        if value.is_zero:
            zero += 1
        elif "subnormal" in flags:
            subnormal += 1
    # The generator alternates between staying subnormal and flushing to
    # zero, so both sub-conditions must be exercised heavily.
    assert subnormal >= COUNT // 3
    assert zero >= COUNT // 3


def test_clamping_pairs_clamp_without_overflowing(reference):
    for vector in VerificationDatabase(33).generate(OperandClass.CLAMPING, COUNT):
        flags = _flags(reference, vector)
        assert "clamped" in flags, f"{vector.x} * {vector.y} did not clamp"
        assert "overflow" not in flags
        assert _values(reference, vector).is_finite


def test_rounding_pairs_are_inexact(reference):
    for vector in VerificationDatabase(34).generate(OperandClass.ROUNDING, COUNT):
        assert "inexact" in _flags(reference, vector)


def test_exact_pairs_raise_no_flags(reference):
    for vector in VerificationDatabase(35).generate(OperandClass.EXACT, COUNT):
        assert not _flags(reference, vector)


def test_zero_pairs_produce_zero_products(reference):
    for vector in VerificationDatabase(36).generate(OperandClass.ZERO, COUNT):
        assert vector.x.is_zero or vector.y.is_zero
        assert _values(reference, vector).is_zero


def test_normal_pairs_stay_finite(reference):
    for vector in VerificationDatabase(37).generate(OperandClass.NORMAL, COUNT):
        assert vector.x.is_finite and vector.y.is_finite
        assert _values(reference, vector).is_finite


def test_special_pairs_contain_specials_or_zeros():
    vectors = VerificationDatabase(38).generate(OperandClass.SPECIAL, COUNT)
    specials = 0
    for vector in vectors:
        assert (
            vector.x.is_special
            or vector.y.is_special
            or vector.x.is_zero
            or vector.y.is_zero
        )
        if vector.x.is_special or vector.y.is_special:
            specials += 1
    # The draw is dominated by infinities and NaNs, not just zeros.
    assert specials >= COUNT // 2


def test_vectors_are_tagged_and_indexed():
    vectors = VerificationDatabase(39).generate(OperandClass.NORMAL, 10)
    assert [vector.index for vector in vectors] == list(range(10))
    assert {vector.operand_class for vector in vectors} == {OperandClass.NORMAL}


# ------------------------------------------------------------------ generate_mix
def test_generate_mix_cycles_classes_uniformly():
    classes = (OperandClass.NORMAL, OperandClass.ZERO, OperandClass.EXACT)
    vectors = VerificationDatabase(40).generate_mix(9, classes)
    assert [vector.operand_class for vector in vectors] == list(classes) * 3
    assert [vector.index for vector in vectors] == list(range(9))


def test_generate_mix_deterministic_per_seed():
    first = VerificationDatabase(2018).generate_mix(64)
    second = VerificationDatabase(2018).generate_mix(64)
    assert [(v.x, v.y, v.operand_class) for v in first] == [
        (v.x, v.y, v.operand_class) for v in second
    ]
    different = VerificationDatabase(2019).generate_mix(64)
    assert [(v.x, v.y) for v in first] != [(v.x, v.y) for v in different]


def _digest(vectors) -> str:
    blob = ";".join(f"{v.operand_class}|{v.x!r}|{v.y!r}" for v in vectors)
    return hashlib.sha256(blob.encode()).hexdigest()


def test_generate_mix_stream_is_platform_independent():
    """Pinned digests: the seeded stream must never drift across platforms
    or Python versions (``random.Random`` guarantees this for the methods
    the generators use), because campaign workers regenerate vectors
    independently of the parent process."""
    assert _digest(VerificationDatabase(2018).generate_mix(64)) == (
        "345440c3036dd12e297c95bccea0e033ca95e5fcfa184c727b522c5a56efafb2"
    )
    assert _digest(
        VerificationDatabase(1234).generate_mix(80, OperandClass.ALL)
    ) == "5875bad1b61309d535d8c24240e29ebabb0d0800b2093805125aebce2fe4a370"


def test_unknown_class_raises_with_name():
    database = VerificationDatabase(41)
    with pytest.raises(ConfigurationError, match="bogus"):
        database.generate("bogus", 3)
    with pytest.raises(ConfigurationError, match="bogus"):
        database.generate_mix(3, ("normal", "bogus"))


def test_all_generated_operands_encode_exactly(reference):
    """Every generated finite operand must round-trip bit-exactly through
    the interchange encoding, or the checker would judge a different value
    than the kernel computed."""
    database = VerificationDatabase(42)
    for vector in database.generate_mix(160, OperandClass.ALL):
        for operand in (vector.x, vector.y):
            decoded = reference.decode(reference.encode_operand(operand))
            if operand.is_finite:
                assert (decoded.sign, decoded.coefficient, decoded.exponent) == (
                    operand.sign,
                    operand.coefficient,
                    operand.exponent,
                )
            else:
                assert decoded.kind == operand.kind
