"""Unit tests for RoCC custom instruction encoding (paper Fig. 3 / Tables II-III)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.isa.decoder import decode_instruction
from repro.isa.instructions import InstrFormat
from repro.isa.rocc import (
    CUSTOM_OPCODES,
    DecimalFunct,
    RoccInstruction,
    decimal_instruction,
)


class TestDecimalFunctTable:
    def test_table_ii_funct7_values(self):
        """The funct7 assignments printed in Table II of the paper."""
        assert DecimalFunct.WR == 0b0000000
        assert DecimalFunct.RD == 0b0000001
        assert DecimalFunct.LD == 0b0000010
        assert DecimalFunct.ACCUM == 0b0000011
        assert DecimalFunct.DEC_ADD == 0b0000100
        assert DecimalFunct.CLR_ALL == 0b0000101
        assert DecimalFunct.DEC_CNV == 0b0000110
        assert DecimalFunct.DEC_MUL == 0b0000111
        assert DecimalFunct.DEC_ACCUM == 0b0001000

    def test_every_instruction_documented(self):
        for name in DecimalFunct.BY_NAME:
            assert name in DecimalFunct.DESCRIPTIONS

    def test_by_value_is_inverse(self):
        for name, value in DecimalFunct.BY_NAME.items():
            assert DecimalFunct.BY_VALUE[value] == name


class TestRoccEncoding:
    def test_custom_opcodes(self):
        assert CUSTOM_OPCODES == {0: 0x0B, 1: 0x2B, 2: 0x5B, 3: 0x7B}

    @given(
        funct7=st.integers(0, 127),
        rd=st.integers(0, 31),
        rs1=st.integers(0, 31),
        rs2=st.integers(0, 31),
        xd=st.booleans(),
        xs1=st.booleans(),
        xs2=st.booleans(),
        custom=st.integers(0, 3),
    )
    def test_encode_decode_roundtrip(self, funct7, rd, rs1, rs2, xd, xs1, xs2, custom):
        instruction = RoccInstruction(
            funct7=funct7, rd=rd, rs1=rs1, rs2=rs2, xd=xd, xs1=xs1, xs2=xs2,
            custom=custom,
        )
        assert RoccInstruction.decode(instruction.encode()) == instruction

    def test_main_decoder_sees_rocc(self):
        word = decimal_instruction("DEC_ADD", rd=12, rs1=11, rs2=10,
                                   xd=True, xs1=True, xs2=True).encode()
        decoded = decode_instruction(word)
        assert decoded.fmt == InstrFormat.ROCC
        assert decoded.funct7 == DecimalFunct.DEC_ADD
        assert (decoded.rd, decoded.rs1, decoded.rs2) == (12, 11, 10)
        assert (decoded.xd, decoded.xs1, decoded.xs2) == (1, 1, 1)

    def test_flag_bits_positions(self):
        """xd/xs1/xs2 occupy bits 14/13/12 as in Fig. 3."""
        base = decimal_instruction("WR").encode()
        with_xd = decimal_instruction("WR", xd=True).encode()
        with_xs1 = decimal_instruction("WR", xs1=True).encode()
        with_xs2 = decimal_instruction("WR", xs2=True).encode()
        assert with_xd ^ base == 1 << 14
        assert with_xs1 ^ base == 1 << 13
        assert with_xs2 ^ base == 1 << 12

    def test_field_validation(self):
        with pytest.raises(EncodingError):
            RoccInstruction(funct7=200)
        with pytest.raises(EncodingError):
            RoccInstruction(funct7=1, rd=40)
        with pytest.raises(EncodingError):
            RoccInstruction(funct7=1, custom=7)
        with pytest.raises(EncodingError):
            decimal_instruction("NOT_A_FUNCTION")

    def test_hex_word_format(self):
        instruction = decimal_instruction("DEC_ADD", rd=12, rs1=11, rs2=10,
                                          xd=True, xs1=True, xs2=True)
        text = instruction.hex_word()
        assert text.startswith("0x") and len(text) == 10
        assert int(text, 16) == instruction.encode()

    def test_function_name(self):
        assert decimal_instruction("DEC_MUL").function_name == "DEC_MUL"
        assert RoccInstruction(funct7=0x55).function_name == "FUNCT_85"
