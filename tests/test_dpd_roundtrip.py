"""DPD declet codec round-trips, shared across both interchange formats.

The declet codec is the one piece every layer of the decimal pipeline leans
on — the golden encoders, the embedded kernel lookup tables, and both
interchange formats.  These tests pin its full behaviour: every 3-digit
value round-trips through its canonical declet, all 1024 bit patterns
decode (the standard's 24 non-canonical patterns alias canonical values),
and both decimal64 and decimal128 accept non-canonical declets inside
encoded words, decoding them to the same value as their canonical form.
"""

from __future__ import annotations

import random

import pytest

from repro.decnumber import dpd
from repro.decnumber.formats import DECIMAL64, DECIMAL128, FORMATS
from repro.decnumber.number import DecNumber
from repro.errors import DecimalError

SPECS = tuple(FORMATS.values())


# ------------------------------------------------------------------- declets
def test_all_1000_values_round_trip_canonically():
    for value in range(1000):
        declet = dpd.encode_declet(value)
        assert 0 <= declet <= 0x3FF
        assert dpd.decode_declet(declet) == value


def test_all_1024_declets_decode_and_realias():
    """Every bit pattern decodes; re-encoding yields the canonical alias
    that decodes to the same value (non-canonical acceptance)."""
    non_canonical = 0
    for declet in range(1024):
        value = dpd.decode_declet(declet)
        assert 0 <= value <= 999
        canonical = dpd.encode_declet(value)
        assert dpd.decode_declet(canonical) == value
        if canonical != declet:
            non_canonical += 1
    # The standard's count: 24 non-canonical declets (aliases of values
    # with two or three large digits).
    assert non_canonical == 24


def test_non_canonical_declets_all_alias_large_digit_values():
    for declet in range(1024):
        if dpd.encode_declet(dpd.decode_declet(declet)) == declet:
            continue
        digits = [int(d) for d in f"{dpd.decode_declet(declet):03d}"]
        assert sum(1 for digit in digits if digit >= 8) >= 2


def test_declet_range_checks():
    with pytest.raises(DecimalError):
        dpd.decode_declet(1024)
    with pytest.raises(DecimalError):
        dpd.encode_declet(1000)
    with pytest.raises(DecimalError):
        dpd.encode_coefficient(1, 4)     # not a multiple of 3 digits
    with pytest.raises(DecimalError):
        dpd.encode_coefficient(10 ** 15, 15)  # does not fit


# ------------------------------------------------- coefficient continuations
@pytest.mark.parametrize("spec", SPECS, ids=lambda spec: spec.name)
def test_coefficient_fields_round_trip_per_format(spec):
    digits = spec.coefficient_continuation_digits
    rng = random.Random(spec.total_bits)
    values = [0, 1, 10 ** digits - 1] + [
        rng.randrange(10 ** digits) for _ in range(500)
    ]
    for value in values:
        field = dpd.encode_coefficient(value, digits)
        assert field < (1 << spec.coefficient_continuation_bits)
        assert dpd.decode_coefficient(field, digits) == value


@pytest.mark.parametrize("spec", SPECS, ids=lambda spec: spec.name)
def test_non_canonical_declets_accepted_in_encoded_words(spec):
    """Replacing the low declet of an encoded word with a non-canonical
    alias must decode to the same value (IEEE 754-2008 acceptance rule)."""
    aliases = {
        dpd.decode_declet(declet): declet
        for declet in range(1024)
        if dpd.encode_declet(dpd.decode_declet(declet)) != declet
    }
    assert aliases
    rng = random.Random(spec.precision)
    checked = 0
    for value, alias in sorted(aliases.items()):
        coefficient = rng.randrange(10 ** (spec.precision - 3)) * 1000 + value
        word = spec.encode(DecNumber(0, coefficient, 0))
        canonical_low = word & 0x3FF
        assert dpd.decode_declet(canonical_low) == value
        patched = (word & ~0x3FF) | alias
        assert patched != word
        decoded = spec.decode(patched)
        reference = spec.decode(word)
        assert (decoded.sign, decoded.coefficient, decoded.exponent) == (
            reference.sign, reference.coefficient, reference.exponent,
        )
        checked += 1
    assert checked == len(aliases)


@pytest.mark.parametrize("spec", SPECS, ids=lambda spec: spec.name)
def test_kernel_tables_agree_with_codec(spec):
    """The embedded DPD<->BCD tables are exact codec mirrors per format."""
    bcd_table = dpd.declet_table_bcd()
    rev_table = dpd.bcd_to_declet_table()
    for declet in range(1024):
        value = dpd.decode_declet(declet)
        bcd = bcd_table[declet]
        assert (bcd >> 8, (bcd >> 4) & 0xF, bcd & 0xF) == (
            value // 100, (value // 10) % 10, value % 10
        )
        assert rev_table[bcd] == dpd.encode_declet(value)
    # Spot-check: the full continuation of each format decodes declet by
    # declet exactly the way the tables would.
    rng = random.Random(99 + spec.precision)
    for _ in range(50):
        coefficient = rng.randrange(10 ** spec.coefficient_continuation_digits)
        field = dpd.encode_coefficient(
            coefficient, spec.coefficient_continuation_digits
        )
        rebuilt = 0
        for index in reversed(range(spec.declets)):
            declet = (field >> (10 * index)) & 0x3FF
            rebuilt = rebuilt * 1000 + dpd.decode_declet(declet)
        assert rebuilt == coefficient


def test_format_declet_counts():
    assert DECIMAL64.declets == 5
    assert DECIMAL128.declets == 11
    assert DECIMAL64.words_per_value == 1
    assert DECIMAL128.words_per_value == 2
