"""Campaign service tests: content-addressed cache, job engine, HTTP API.

Pins the ROADMAP item 5 acceptance criteria (docs/service.md): a repeated
campaign is served entirely from the result cache with a summary
bit-identical to the cold run, the cache key covers every measurement
input plus the code-version fingerprint, and concurrent duplicate
submissions coalesce onto one computation.
"""

import asyncio
import dataclasses
import json
import os

import pytest

from repro.core.campaign import run_table_iv_campaign, table_iv_cells
from repro.core.results import shard_report_from_dict, shard_report_to_dict
from repro.errors import ConfigurationError
from repro.service import (
    CampaignService,
    ResultCache,
    cell_key,
    cell_key_payload,
    cells_from_spec,
    code_version,
    comparable_summary,
    serve_in_background,
)
from repro.service.client import (
    ServiceError,
    get_json,
    request_json,
    stream_events,
    submit_and_wait,
)
from repro.testgen.config import SolutionKind

KINDS = (SolutionKind.SOFTWARE, SolutionKind.METHOD1)
SAMPLES = 12


def _cells(**overrides):
    options = dict(num_samples=SAMPLES, kinds=KINDS, verify_functionally=False)
    options.update(overrides)
    return table_iv_cells(**options)


class TestCellKey:
    def test_key_is_deterministic(self):
        first, second = _cells()[0], _cells()[0]
        assert cell_key(first) == cell_key(second)
        assert len(cell_key(first)) == 64  # full sha256 hex digest

    def test_key_covers_every_measurement_input(self):
        # Unlike BatchRunner._key (which may omit vector provenance because
        # vectors are rebound on every hit), the persistent cache key must
        # hash the *full* provenance: cached cycle reports are never
        # recomputed, so anything that can change them must change the key.
        base = _cells()[0]
        variants = [
            _cells(num_samples=SAMPLES + 1)[0],
            _cells(seed=99)[0],
            _cells(repetitions=2)[0],
            _cells(operand_classes=("zero",))[0],
            _cells(fmt="decimal128")[0],
            _cells(op="add")[0],
            _cells(verify_functionally=True)[0],
            _cells(kinds=(SolutionKind.METHOD1, SolutionKind.SOFTWARE))[0],
        ]
        keys = {cell_key(cell) for cell in variants}
        assert cell_key(base) not in keys
        assert len(keys) == len(variants)

    def test_shard_plan_is_part_of_the_key(self):
        cell = _cells()[0]
        assert cell_key(cell, shards_per_cell=1) != cell_key(
            cell, shards_per_cell=3
        )

    def test_code_version_bump_invalidates(self):
        cell = _cells()[0]
        assert cell_key(cell, version="deadbeef") != cell_key(
            cell, version="cafef00d"
        )
        # The default version is the real fingerprint of src/repro — stable
        # within a process, 64 hex chars, and embedded in the payload.
        payload = cell_key_payload(cell)
        assert payload["code_version"] == code_version()
        assert len(code_version()) == 64

    def test_payload_is_canonical_json(self):
        payload = cell_key_payload(_cells()[0])
        round_tripped = json.loads(
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )
        assert round_tripped == payload
        for field in ("schema", "code_version", "seed", "solution",
                      "workload", "fmt", "op", "rocket", "shard_plan"):
            assert field in payload


class TestResultCache:
    def test_store_load_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        shard = shard_report_from_dict(dict(
            shard_index=0, start=0, stop=3, raw_cycle_samples=[5, 6, 7],
            hw_cycles=30, sw_cycles=100, icache_accesses=50, icache_hits=40,
            dcache_accesses=20, dcache_hits=10, sim_wall_seconds=0.25,
            check_total=3, verified=True,
        ))
        cache.store("ab" * 32, [shard])
        loaded = cache.load("ab" * 32)
        assert loaded is not None
        assert dataclasses.asdict(loaded[0]) == dataclasses.asdict(shard)
        assert cache.hits == 1 and len(cache) == 1

    def test_corrupt_and_foreign_entries_are_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        path = cache._entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write("not json{")
        assert cache.load(key) is None
        with open(path, "w") as handle:
            json.dump({"schema": 9999, "shards": []}, handle)
        assert cache.load(key) is None
        assert cache.misses == 2 and cache.hits == 0

    def test_stats_and_bypass_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("ef" * 32) is None
        cache.bypass(2)
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["bypasses"] == 2
        assert stats["entries"] == 0 and cache.hit_rate == 0.0

    def test_version_scoped_store(self, tmp_path):
        # Entries written under one code version are invisible to a cache
        # constructed with another: the version participates in the key.
        cell = _cells()[0]
        old = ResultCache(tmp_path, version="old")
        new = ResultCache(tmp_path, version="new")
        assert old.key_for(cell) != new.key_for(cell)
        assert not new.contains(old.key_for(cell))


class TestRunCampaignCache:
    def test_warm_rerun_is_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        options = dict(num_samples=SAMPLES, kinds=KINDS, cache=cache)
        cold = run_table_iv_campaign(**options)
        assert cold.cache_misses == len(KINDS) and cold.cache_hits == 0
        warm = run_table_iv_campaign(**options)
        assert warm.cache_hits == len(KINDS) and warm.cache_misses == 0
        assert comparable_summary(cold.to_summary()) == comparable_summary(
            warm.to_summary()
        )
        # Everything but the campaign's own wall clock matches — including
        # sim_wall_seconds, which warm runs inherit from the cached shards.
        assert cold.to_summary()["sim_wall_seconds"] == (
            warm.to_summary()["sim_wall_seconds"]
        )
        assert cache.hits == len(KINDS) and cache.misses == len(KINDS)

    def test_sharded_warm_rerun_matches(self, tmp_path):
        cache = ResultCache(tmp_path)
        options = dict(
            num_samples=SAMPLES, kinds=KINDS, shards_per_cell=3, cache=cache
        )
        cold = run_table_iv_campaign(**options)
        warm = run_table_iv_campaign(**options)
        assert warm.cache_hits == len(KINDS)
        assert comparable_summary(cold.to_summary()) == comparable_summary(
            warm.to_summary()
        )
        assert warm.to_summary()["workers"] == cold.to_summary()["workers"]
        assert warm.total_shards == cold.total_shards == 3 * len(KINDS)


class TestCellsFromSpec:
    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            cells_from_spec({"samples": 10, "smaples": 20})

    def test_table_iv_spec(self):
        cells = cells_from_spec(
            {"samples": 10, "kinds": list(KINDS), "verify": False}
        )
        assert [cell.solution.kind for cell in cells] == list(KINDS)
        assert all(cell.num_samples == 10 for cell in cells)

    def test_non_object_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            cells_from_spec(["samples", 10])


class TestCampaignService:
    SPEC = {"samples": SAMPLES, "kinds": list(KINDS), "verify": False}

    def test_concurrent_duplicates_coalesce_then_cache(self, tmp_path):
        async def scenario():
            service = CampaignService(ResultCache(tmp_path))
            try:
                first = await service.submit(self.SPEC)
                second = await service.submit(self.SPEC)
                await asyncio.gather(service.wait(first), service.wait(second))
                third = await service.submit(self.SPEC)
                await service.wait(third)
            finally:
                service.shutdown()
            return first, second, third

        first, second, third = asyncio.run(scenario())
        cells = len(KINDS)
        assert first.status == second.status == third.status == "done"
        # Exactly one job computed each cell; its concurrent twin either
        # latched onto the in-flight future (coalesced) or, if a cell had
        # already landed, read it back from the store (cached).
        assert first.cells_computed + second.cells_computed == cells
        assert (second.cells_coalesced + second.cells_cached
                + second.cells_computed) == cells
        # The sequential third submission is a pure cache hit.
        assert third.cells_cached == cells and third.cells_computed == 0
        assert comparable_summary(first.summary) == comparable_summary(
            third.summary
        )

    def test_bad_specs_rejected_at_submit(self, tmp_path):
        async def scenario():
            service = CampaignService(ResultCache(tmp_path))
            try:
                with pytest.raises(ConfigurationError):
                    await service.submit({"samples": 10, "typo_field": 1})
                with pytest.raises(ConfigurationError):
                    await service.submit(
                        {"samples": SAMPLES, "workload": "no-such-workload"}
                    )
            finally:
                service.shutdown()

        asyncio.run(scenario())

    def test_runtime_failure_marks_job_failed(self, tmp_path, monkeypatch):
        from repro.service import engine

        def explode(task):
            raise RuntimeError("simulator caught fire")

        monkeypatch.setattr(engine, "_run_shard_task", explode)

        async def scenario():
            service = CampaignService(ResultCache(tmp_path))
            try:
                job = await service.submit(self.SPEC)
                await service.wait(job)
            finally:
                service.shutdown()
            return job

        job = asyncio.run(scenario())
        assert job.status == "failed"
        assert "simulator caught fire" in job.error
        assert job.summary is None

    def test_cache_bypass_spec(self, tmp_path):
        async def scenario():
            cache = ResultCache(tmp_path)
            service = CampaignService(cache)
            try:
                spec = dict(self.SPEC, cache=False)
                job = await service.submit(spec)
                await service.wait(job)
                rerun = await service.submit(spec)
                await service.wait(rerun)
            finally:
                service.shutdown()
            return cache, job, rerun

        cache, job, rerun = asyncio.run(scenario())
        assert job.status == rerun.status == "done"
        assert rerun.cells_cached == 0  # nothing stored, nothing served
        assert cache.bypasses == 2 * len(KINDS)
        assert len(cache) == 0


class TestHttpService:
    SPEC = {"samples": SAMPLES, "kinds": list(KINDS), "verify": False,
            "label": "http-e2e"}

    def test_end_to_end_cold_then_warm(self, tmp_path):
        cache = ResultCache(tmp_path)
        with serve_in_background(cache) as server:
            health = get_json(f"{server.base_url}/healthz")
            assert health["status"] == "ok"

            cold = submit_and_wait(server.base_url, self.SPEC)
            assert cold["status"] == "done"
            assert cold["cache"]["computed"] == len(KINDS)

            warm = submit_and_wait(server.base_url, self.SPEC)
            assert warm["cache"]["hits"] == len(KINDS)
            assert warm["cache"]["computed"] == 0
            assert comparable_summary(cold["summary"]) == comparable_summary(
                warm["summary"]
            )

            cold_events = stream_events(server.base_url, cold["job"])
            cold_names = [event["event"] for event in cold_events]
            assert cold_names[0] == "submitted" and cold_names[-1] == "done"
            assert "cell_done" in cold_names and "shard_done" in cold_names

            warm_events = stream_events(server.base_url, warm["job"])
            warm_names = [event["event"] for event in warm_events]
            assert warm_names[0] == "submitted" and warm_names[-1] == "done"
            assert warm_names.count("cell_cached") == len(KINDS)
            assert "shard_done" not in warm_names

            stats = get_json(f"{server.base_url}/stats")
            assert stats["cache"]["hits"] == len(KINDS)
            assert stats["jobs"]["done"] == 2
        assert cache.hit_rate == 0.5

    def test_error_responses(self, tmp_path):
        with serve_in_background(ResultCache(tmp_path)) as server:
            status, payload = request_json(f"{server.base_url}/status/job-99")
            assert status == 404
            status, payload = request_json(
                f"{server.base_url}/submit", {"smaples": 10}
            )
            assert status == 400 and "smaples" in payload["error"]
            with pytest.raises(ServiceError) as excinfo:
                get_json(f"{server.base_url}/no-such-route")
            assert excinfo.value.status == 404

    def test_result_while_running_is_409(self, tmp_path):
        with serve_in_background(ResultCache(tmp_path)) as server:
            ticket = json.loads(json.dumps(self.SPEC))
            ticket["samples"] = 60  # slow enough to catch mid-flight
            submitted, _ = None, None
            status, payload = request_json(
                f"{server.base_url}/submit", ticket
            )
            assert status == 202
            job_id = payload["job"]
            early, early_payload = request_json(
                f"{server.base_url}/result/{job_id}"
            )
            # Either we caught it running (409) or it already finished (200)
            # on a fast machine; both are correct, never a 5xx.
            assert early in (200, 409)
            final = submit_and_wait(server.base_url, ticket)
            assert final["status"] == "done"


class TestSerialization:
    def test_shard_report_dict_round_trip_preserves_models(self):
        shard = shard_report_from_dict(dict(
            shard_index=1, start=3, stop=5, raw_cycle_samples=[1, 2],
            hw_cycles=3, sw_cycles=4, icache_accesses=5, icache_hits=4,
            dcache_accesses=3, dcache_hits=2, sim_wall_seconds=0.1,
            check_total=2, verified=True, models=["spike", "rocket"],
        ))
        assert shard.models == ("spike", "rocket")
        again = shard_report_from_dict(shard_report_to_dict(shard))
        assert dataclasses.asdict(again) == dataclasses.asdict(shard)
