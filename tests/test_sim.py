"""Tests for the functional simulation layer (memory, executor, SPIKE front end)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm.builder import AsmBuilder
from repro.asm.program import TOHOST_ADDRESS
from repro.errors import SimulationError, TrapError
from repro.sim.memory import SparseMemory
from repro.sim.spike import SpikeSimulator
from tests.conftest import run_fragment

MASK64 = 0xFFFFFFFFFFFFFFFF


class TestSparseMemory:
    @pytest.mark.parametrize("size", [1, 2, 4, 8])
    def test_read_write_roundtrip(self, size):
        memory = SparseMemory()
        value = 0xA5A5_5A5A_1234_CDEF & ((1 << (8 * size)) - 1)
        memory.write(0x1000, size, value)
        assert memory.read(0x1000, size) == value

    def test_unwritten_memory_reads_zero(self):
        assert SparseMemory().read(0x9999_0000, 8) == 0

    def test_cross_page_access(self):
        memory = SparseMemory()
        address = 0x1FFC  # straddles a 4 KiB page boundary for an 8-byte access
        memory.write(address, 8, 0x1122334455667788)
        assert memory.read(address, 8) == 0x1122334455667788

    def test_write_hook_intercepts(self):
        memory = SparseMemory()
        seen = []
        memory.add_write_hook(0x4000_0000, lambda value, size: seen.append(value))
        memory.write(0x4000_0000, 8, 77)
        assert seen == [77]
        assert memory.read(0x4000_0000, 8) == 0  # not actually stored

    def test_read_hook(self):
        memory = SparseMemory()
        memory.add_read_hook(0x5000, lambda size: 0xAB)
        assert memory.read(0x5000, 8) == 0xAB

    def test_bytes_roundtrip(self):
        memory = SparseMemory()
        blob = bytes(range(256)) * 20
        memory.write_bytes(0x3000, blob)
        assert memory.read_bytes(0x3000, len(blob)) == blob

    def test_read_bytes_spanning_pages_and_holes(self):
        memory = SparseMemory()
        # Two written islands with an unbacked page between them; the read
        # spans written/unwritten/written regions across page boundaries.
        memory.write_bytes(0x0FF8, b"\x11" * 16)     # crosses 0x1000
        memory.write_bytes(0x2FFC, b"\x22" * 8)      # crosses 0x3000
        data = memory.read_bytes(0x0FF0, 0x3010 - 0x0FF0)
        assert len(data) == 0x3010 - 0x0FF0
        assert data[0:8] == b"\x00" * 8              # before first island
        assert data[8:24] == b"\x11" * 16
        assert data[24:0x2FFC - 0x0FF0] == b"\x00" * (0x2FFC - 0x0FF0 - 24)
        assert data[0x2FFC - 0x0FF0:0x3004 - 0x0FF0] == b"\x22" * 8
        assert data[0x3004 - 0x0FF0:] == b"\x00" * 0xC

    def test_read_bytes_fully_unbacked(self):
        memory = SparseMemory()
        assert memory.read_bytes(0x7000_0000, 3 * 4096 + 5) == bytes(3 * 4096 + 5)

    def test_scalar_rw_straddling_page_boundary(self):
        memory = SparseMemory()
        for size in (2, 4, 8):
            for offset in range(1, size):
                address = 0x5000 - offset  # straddles the 0x5000 page edge
                value = 0x1122334455667788 & ((1 << (8 * size)) - 1)
                memory.write(address, size, value)
                assert memory.read(address, size) == value, (size, offset)

    def test_interleaved_hot_page_reads_and_writes(self):
        # Alternating accesses to different pages exercise the last-page
        # caches; values must never leak between pages.
        memory = SparseMemory()
        memory.write(0x1000, 8, 0xAAAA)
        memory.write(0x9000, 8, 0xBBBB)
        for _ in range(3):
            assert memory.read(0x1000, 8) == 0xAAAA
            assert memory.read(0x9000, 8) == 0xBBBB
        memory.write(0x1000, 8, 0xCCCC)
        assert memory.read(0x1000, 8) == 0xCCCC
        assert memory.read(0x9000, 8) == 0xBBBB


def _exec_binop(mnemonic, a, b_value):
    """Run a single register-register instruction and return rd."""

    def body(b):
        b.li("t0", a & MASK64)
        b.li("t1", b_value & MASK64)
        b.emit(mnemonic, "t2", "t0", "t1")
        b.emit("sd", "t2", "a5", 0)

    return run_fragment(body).read_dword("out")


class TestExecutorSemantics:
    @pytest.mark.parametrize("mnemonic,a,b,expected", [
        ("add", 5, 7, 12),
        ("add", MASK64, 1, 0),
        ("sub", 3, 5, (3 - 5) & MASK64),
        ("and", 0xFF00, 0x0FF0, 0x0F00),
        ("or", 0xFF00, 0x0FF0, 0xFFF0),
        ("xor", 0xFF00, 0x0FF0, 0xF0F0),
        ("sll", 1, 63, 1 << 63),
        ("srl", 1 << 63, 63, 1),
        ("sra", 1 << 63, 63, MASK64),
        ("slt", (-5) & MASK64, 3, 1),
        ("sltu", (-5) & MASK64, 3, 0),
        ("mul", 10**10, 10**6, (10**16) & MASK64),
        ("mulhu", 10**18, 10**18, (10**36) >> 64),
        ("divu", 10**16, 10**9, 10**7),
        ("remu", 10**16 + 123, 10**9, (10**16 + 123) % 10**9),
        ("divu", 5, 0, MASK64),                  # division by zero
        ("remu", 5, 0, 5),
        ("div", (-7) & MASK64, 2, (-3) & MASK64),  # trunc toward zero
        ("rem", (-7) & MASK64, 2, (-1) & MASK64),
        ("div", 1 << 63, MASK64, 1 << 63),        # overflow case
        ("rem", 1 << 63, MASK64, 0),
        ("addw", 0x7FFFFFFF, 1, 0xFFFFFFFF80000000),
        ("subw", 0, 1, MASK64),
        ("sraw", 0x80000000, 4, 0xFFFFFFFFF8000000),
    ])
    def test_alu_and_muldiv(self, mnemonic, a, b, expected):
        assert _exec_binop(mnemonic, a, b) == expected

    @pytest.mark.parametrize("store,load,value,expected", [
        ("sd", "ld", 0x8000000000000001, 0x8000000000000001),
        ("sw", "lw", 0x80000001, 0xFFFFFFFF80000001),
        ("sw", "lwu", 0x80000001, 0x80000001),
        ("sh", "lh", 0x8001, 0xFFFFFFFFFFFF8001),
        ("sh", "lhu", 0x8001, 0x8001),
        ("sb", "lb", 0x80, 0xFFFFFFFFFFFFFF80),
        ("sb", "lbu", 0x80, 0x80),
    ])
    def test_load_store_extension(self, store, load, value, expected):
        def body(b):
            b.li("t0", value)
            b.emit(store, "t0", "a5", 8)
            b.emit(load, "t1", "a5", 8)
            b.emit("sd", "t1", "a5", 0)

        assert run_fragment(body).read_dword("out") == expected

    def test_branches_and_jumps(self):
        def body(b):
            b.li("t0", 0)
            b.li("t1", 3)
            b.label("loop")
            b.emit("addi", "t0", "t0", 1)
            b.branch("bne", "t0", "t1", "loop")
            b.jal("ra", "leaf")
            b.emit("sd", "a0", "a5", 0)
            b.emit("sd", "t0", "a5", 8)
            b.j("end")
            b.label("leaf")
            b.li("a0", 99)
            b.ret()
            b.label("end")

        result = run_fragment(body)
        assert result.read_dword("out", 0) == 99
        assert result.read_dword("out", 1) == 3

    def test_x0_is_hardwired(self):
        def body(b):
            b.li("t0", 55)
            b.emit("addi", "zero", "t0", 0)
            b.emit("sd", "zero", "a5", 0)

        assert run_fragment(body).read_dword("out") == 0

    def test_ebreak_traps(self):
        def body(b):
            b.emit("ebreak")

        with pytest.raises(TrapError):
            run_fragment(body)

    def test_rocc_without_accelerator_fails(self):
        def body(b):
            b.rocc("DEC_ADD", rd="a2", rs1="a1", rs2="a0", xd=True, xs1=True, xs2=True)

        with pytest.raises(SimulationError):
            run_fragment(body)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, MASK64), st.integers(0, MASK64))
    def test_mulhu_property(self, a, b):
        assert _exec_binop("mulhu", a, b) == (a * b) >> 64


class TestSpikeSimulator:
    def test_exit_code_via_ecall(self):
        builder = AsmBuilder()
        builder.label("_start")
        builder.li("a0", 3)
        builder.li("a7", 93)
        builder.emit("ecall")
        result = SpikeSimulator(builder.link()).run()
        assert result.exit_code == 3

    def test_exit_via_tohost(self):
        builder = AsmBuilder()
        builder.label("_start")
        builder.li("t0", TOHOST_ADDRESS)
        builder.li("t1", (7 << 1) | 1)
        builder.emit("sd", "t1", "t0", 0)
        builder.label("spin")
        builder.j("spin")
        result = SpikeSimulator(builder.link()).run()
        assert result.exit_code == 7

    def test_instruction_limit_guard(self):
        builder = AsmBuilder()
        builder.label("_start")
        builder.label("spin")
        builder.j("spin")
        simulator = SpikeSimulator(builder.link(), max_instructions=1000)
        with pytest.raises(SimulationError):
            simulator.run()

    def test_rdcycle_and_rdinstret_monotonic(self):
        def body(b):
            b.rdinstret("t0")
            b.nop()
            b.nop()
            b.rdinstret("t1")
            b.emit("sub", "t2", "t1", "t0")
            b.emit("sd", "t2", "a5", 0)

        assert run_fragment(body).read_dword("out") == 3

    def test_read_dwords_and_symbols(self):
        def body(b):
            b.li("t0", 11)
            b.li("t1", 22)
            b.emit("sd", "t0", "a5", 0)
            b.emit("sd", "t1", "a5", 8)

        result = run_fragment(body)
        assert result.read_dwords("out", 2) == [11, 22]
        with pytest.raises(SimulationError):
            result.read_dword("missing_symbol")
