"""End-to-end integration tests: the whole Fig. 2 flow in one place."""

import pytest

from repro.core.evaluation import EvaluationFramework
from repro.core.method1 import FunctionalHardware, Method1HostModel
from repro.gem5.atomic_cpu import AtomicSimpleCPU
from repro.rocc.decimal_accel import DecimalAccelerator
from repro.rocket.config import RocketConfig
from repro.rocket.core import RocketEmulator
from repro.sim.spike import SpikeSimulator
from repro.testgen.config import SolutionKind, TestProgramConfig
from repro.testgen.generator import build_test_program
from repro.verification.checker import ResultChecker
from repro.verification.coverage import CoverageTracker
from repro.verification.database import OperandClass, VerificationDatabase
from repro.verification.reference import GoldenReference


@pytest.fixture(scope="module")
def shared_vectors():
    return VerificationDatabase(seed=1001).generate_mix(24, OperandClass.ALL)


class TestFullPipeline:
    def test_same_binary_on_all_three_simulators(self, shared_vectors):
        """One Method-1 binary runs identically on Spike, Rocket and Gem5."""
        config = TestProgramConfig(
            solution=SolutionKind.METHOD1, num_samples=len(shared_vectors)
        )
        program = build_test_program(config, vectors=shared_vectors)

        spike = SpikeSimulator(program.image, accelerator=DecimalAccelerator()).run()
        rocket = RocketEmulator(program.image, accelerator=DecimalAccelerator()).run()
        atomic = AtomicSimpleCPU(program.image, accelerator=DecimalAccelerator()).run()

        spike_results = program.read_results(spike)
        assert spike_results == program.read_results(rocket)
        assert spike_results == program.read_results(atomic)
        # Instruction counts agree between the functional and atomic models.
        assert spike.instructions_retired == atomic.instructions_retired
        # The timed model charges more cycles than instructions.
        assert rocket.cycles > rocket.instructions_retired

    def test_rocket_and_host_model_agree_with_golden(self, shared_vectors, golden):
        """RISC-V kernel results == host model results == golden library."""
        config = TestProgramConfig(
            solution=SolutionKind.METHOD1, num_samples=len(shared_vectors)
        )
        program = build_test_program(config, vectors=shared_vectors)
        result = RocketEmulator(program.image, accelerator=DecimalAccelerator()).run()
        words = program.read_results(result)
        host = Method1HostModel(hardware=FunctionalHardware())
        checker = ResultChecker(golden)
        for vector, word in zip(shared_vectors, words):
            golden_value = golden.compute(vector.x, vector.y).value
            host_value = host.multiply(vector.x, vector.y)
            kernel_value = golden.decode(word)
            assert checker.results_match(golden_value, kernel_value)
            assert checker.results_match(golden_value, host_value)

    def test_coverage_of_paper_conditions(self, shared_vectors, golden):
        tracker = CoverageTracker(golden)
        tracker.record_all(shared_vectors)
        required = {"inexact", "overflow", "subnormal", "clamped", "result_zero"}
        assert tracker.missing_conditions(required) == frozenset()

    def test_cache_nondeterminism_is_bounded(self):
        """Different cache-replacement seeds change cycles only slightly
        (the effect the paper attributes to Rocket's random replacement)."""
        framework_a = EvaluationFramework(
            num_samples=10, seed=55, rocket_config=RocketConfig(seed=1)
        )
        framework_b = EvaluationFramework(
            num_samples=10, seed=55, rocket_config=RocketConfig(seed=2)
        )
        cycles_a = framework_a.run_cycle_accurate(SolutionKind.METHOD1).cycle_report
        cycles_b = framework_b.run_cycle_accurate(SolutionKind.METHOD1).cycle_report
        ratio = cycles_a.avg_total_cycles / cycles_b.avg_total_cycles
        assert 0.9 < ratio < 1.1

    def test_rocc_interface_latency_increases_hw_part_only(self):
        """The paper's discussion: interface latency penalises the accelerator
        path; the software baseline is unaffected."""
        slow_interface = RocketConfig(rocc_cmd_latency_cycles=8,
                                      rocc_resp_latency_cycles=8)
        base = EvaluationFramework(num_samples=10, seed=60)
        slow = EvaluationFramework(num_samples=10, seed=60,
                                   rocket_config=slow_interface)
        base_m1 = base.run_cycle_accurate(SolutionKind.METHOD1).cycle_report
        slow_m1 = slow.run_cycle_accurate(SolutionKind.METHOD1).cycle_report
        base_sw = base.run_cycle_accurate(SolutionKind.SOFTWARE).cycle_report
        slow_sw = slow.run_cycle_accurate(SolutionKind.SOFTWARE).cycle_report
        assert slow_m1.avg_hw_cycles > base_m1.avg_hw_cycles
        assert abs(slow_sw.avg_total_cycles - base_sw.avg_total_cycles) < 1.0

    def test_dummy_speedup_consistent_between_rocket_and_gem5(self):
        """The paper's headline consistency claim (Tables IV vs VI): the
        dummy-function speedup estimate is similar across environments."""
        framework = EvaluationFramework(num_samples=20, seed=42)
        table_iv = framework.evaluate_table_iv(
            kinds=(SolutionKind.SOFTWARE, SolutionKind.METHOD1_DUMMY)
        )
        table_vi = framework.evaluate_table_vi()
        rocket_speedup = table_iv.speedups()[SolutionKind.METHOD1_DUMMY]
        gem5_speedup = table_vi.speedup(SolutionKind.METHOD1_DUMMY)
        assert rocket_speedup > 1.0 and gem5_speedup > 1.0
        assert 0.5 < rocket_speedup / gem5_speedup < 2.0
